"""Equality-join analysis and candidate indexes for detection.

Every constraint in the paper (and in the call-forwarding study) has
the shape ``forall a, b : same_subject(a, b) and ... implies ...``:
the body is *guarded* by equality predicates over context fields, so
bindings whose contexts disagree on those fields satisfy the body
vacuously and can never produce a violation.  The incremental fast
path therefore does not need the full cross product of per-type
extents -- it only needs the candidates that share the new context's
field values.

This module provides the two halves of that optimisation:

* :func:`analyze_joins` statically extracts, from a prefix-universal
  body, the sets of quantified positions that any violating binding
  must agree on (per context field).  The extraction is *sound*: an
  equality predicate ``E`` prunes only when the body is a tautology
  under ``not E`` (see :func:`_guards`), so pruned bindings are
  exactly bindings that cannot violate.
* :class:`CandidateIndex` maintains persistent per-``(type, field)``
  hash buckets over a live context pool, updated through pool
  add/remove/expire listeners, and :class:`EphemeralScopeIndex`
  provides the same interface over a one-off scope list (used when the
  checking scope is a strict subset of the pool, e.g. under strategies
  that exclude used contexts from checking).

Both index classes preserve **arrival order** inside every extent and
bucket, which keeps candidate enumeration -- and therefore violation
order and resolution decisions -- byte-identical to the unindexed
scan.

Pruning keys on the *names* in :data:`EQUALITY_PREDICATES`; replacing
one of those names in a :class:`FunctionRegistry` with a function that
is not field equality (a test double, say) and expecting join pruning
to follow it is unsupported -- disable kernels instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.context import Context
from .ast import Formula, Implies, Not, Or, And, Predicate, Var

__all__ = [
    "EQUALITY_PREDICATES",
    "FIELD_GETTERS",
    "register_equality_predicate",
    "JoinAnalysis",
    "analyze_joins",
    "CandidateIndex",
    "EphemeralScopeIndex",
    "BatchOverlayView",
]

#: Context field name -> extractor.  Values must be hashable.
FIELD_GETTERS: Dict[str, Callable[[Context], object]] = {
    "subject": lambda ctx: ctx.subject,
    "ctx_type": lambda ctx: ctx.ctx_type,
}

#: Predicate name -> the context field it equates (both arguments).
EQUALITY_PREDICATES: Dict[str, str] = {
    "same_subject": "subject",
    "same_type": "ctx_type",
}


def register_equality_predicate(
    name: str, field: str, getter: Callable[[Context], object]
) -> None:
    """Declare that predicate ``name`` means ``getter(a) == getter(b)``.

    Lets applications opt their own binary equality predicates into
    join pruning.  ``getter`` must return a hashable value.
    """
    FIELD_GETTERS[field] = getter
    EQUALITY_PREDICATES[name] = field


# -- static join analysis -----------------------------------------------------


def _equality(formula: Formula, positions: Mapping[str, int]):
    """The ``(field, i, j)`` key if ``formula`` is an equality predicate
    over two distinct prefix variables, else ``None``."""
    if not isinstance(formula, Predicate):
        return None
    field = EQUALITY_PREDICATES.get(formula.func)
    if field is None or len(formula.args) != 2:
        return None
    a, b = formula.args
    if not (isinstance(a, Var) and isinstance(b, Var)) or a.name == b.name:
        return None
    if a.name not in positions or b.name not in positions:
        return None
    i, j = positions[a.name], positions[b.name]
    return (field, min(i, j), max(i, j))


def _guards(formula: Formula, positions: Mapping[str, int]) -> frozenset:
    """Equality predicates ``E`` with ``not E  |=  formula``.

    When any such guard is false for a binding, the body is true and
    the binding cannot violate -- so it may be skipped.
    """
    if isinstance(formula, Implies):
        return _conj(formula.left, positions) | _guards(formula.right, positions)
    if isinstance(formula, Or):
        return _guards(formula.left, positions) | _guards(formula.right, positions)
    if isinstance(formula, And):
        return _guards(formula.left, positions) & _guards(formula.right, positions)
    if isinstance(formula, Not):
        return _conj(formula.operand, positions)
    return frozenset()


def _conj(formula: Formula, positions: Mapping[str, int]) -> frozenset:
    """Equality predicates ``E`` with ``formula  |=  E``."""
    key = _equality(formula, positions)
    if key is not None:
        return frozenset({key})
    if isinstance(formula, And):
        return _conj(formula.left, positions) | _conj(formula.right, positions)
    if isinstance(formula, Or):
        return _conj(formula.left, positions) & _conj(formula.right, positions)
    if isinstance(formula, Not):
        return _guards(formula.operand, positions)
    if isinstance(formula, Implies):
        return _guards(formula.left, positions) & _conj(formula.right, positions)
    return frozenset()


@dataclass(frozen=True)
class JoinAnalysis:
    """Per-field equivalence classes of prefix positions.

    ``groups`` holds ``(field, positions)`` pairs (positions index the
    universal prefix, each group has >= 2 members): any binding that
    can violate the body agrees on ``field`` across ``positions``.
    """

    groups: Tuple[Tuple[str, FrozenSet[int]], ...]

    def fields_joining(self, pinned: int, other: int) -> Tuple[str, ...]:
        """Fields that ``other`` must share with position ``pinned``."""
        return tuple(
            field
            for field, members in self.groups
            if pinned in members and other in members
        )

    @property
    def is_empty(self) -> bool:
        return not self.groups


def analyze_joins(
    vars_types: Sequence[Tuple[str, str]], body: Formula
) -> JoinAnalysis:
    """Extract the sound equality joins of a prefix-universal body."""
    positions = {var: i for i, (var, _) in enumerate(vars_types)}
    guards = _guards(body, positions)
    # Union-find per field: a chain same_f(a,b) and same_f(b,c) joins
    # all three positions.
    parents: Dict[Tuple[str, int], Tuple[str, int]] = {}

    def find(node):
        root = node
        while parents.get(root, root) != root:
            root = parents[root]
        while parents.get(node, node) != node:
            parents[node], node = root, parents[node]
        return root

    for field, i, j in guards:
        parents.setdefault((field, i), (field, i))
        parents.setdefault((field, j), (field, j))
        parents[find((field, i))] = find((field, j))

    classes: Dict[Tuple[str, int], List[int]] = {}
    for field, i, j in guards:
        for position in (i, j):
            root = find((field, position))
            members = classes.setdefault(root, [])
            if position not in members:
                members.append(position)
    groups = sorted(
        ((root[0], frozenset(members)) for root, members in classes.items()),
        key=lambda group: (group[0], sorted(group[1])),
    )
    return JoinAnalysis(tuple(groups))


# -- candidate indexes --------------------------------------------------------

_EMPTY: Dict[str, Context] = {}
# One shared (and necessarily forever-empty) values view: a probe that
# misses every bucket should not allocate anything.
_EMPTY_VALUES = _EMPTY.values()

#: Restriction list: ``(field, required value)`` pairs.
Restrictions = Sequence[Tuple[str, object]]


class CandidateIndex:
    """Persistent per-(type, field) hash buckets over a context pool.

    Registered as a pool listener (``on_add`` / ``on_remove`` /
    ``on_clear``), so add, discard and expiry keep it consistent
    without the checker rebuilding ``by_type`` per detect call.
    Buckets map a field value to contexts **in arrival order** (dict
    insertion order), matching a linear scan of the pool.

    Fields are indexed lazily: the first :meth:`candidates` query for
    a field backfills its buckets from the current contents.

    :attr:`generation` counts content mutations (adds, removes,
    clears).  Batched detection memoizes probe results across calls
    and uses the generation as its invalidation stamp: an unchanged
    generation guarantees every memoized result is still exact.
    """

    def __init__(self, fields: Iterable[str] = ()) -> None:
        self._by_type: Dict[str, Dict[str, Context]] = {}
        # (ctx_type, field) -> value -> ctx_id -> ctx
        self._buckets: Dict[Tuple[str, str], Dict[object, Dict[str, Context]]] = {}
        self._fields: List[str] = []
        self.size = 0
        self.generation = 0
        for field in fields:
            self.ensure_field(field)

    # -- pool listener interface --

    def on_add(self, ctx: Context) -> None:
        self._by_type.setdefault(ctx.ctx_type, {})[ctx.ctx_id] = ctx
        self.size += 1
        self.generation += 1
        for field in self._fields:
            value = FIELD_GETTERS[field](ctx)
            bucket = self._buckets.setdefault((ctx.ctx_type, field), {})
            bucket.setdefault(value, {})[ctx.ctx_id] = ctx

    def on_remove(self, ctx: Context) -> None:
        extent = self._by_type.get(ctx.ctx_type, _EMPTY)
        if ctx.ctx_id not in extent:
            return
        del extent[ctx.ctx_id]
        self.size -= 1
        self.generation += 1
        for field in self._fields:
            value = FIELD_GETTERS[field](ctx)
            by_value = self._buckets.get((ctx.ctx_type, field))
            if by_value is not None:
                bucket = by_value.get(value)
                if bucket is not None:
                    bucket.pop(ctx.ctx_id, None)

    def on_clear(self) -> None:
        self._by_type.clear()
        self._buckets.clear()
        self.size = 0
        self.generation += 1

    # -- maintenance --

    def ensure_field(self, field: str) -> None:
        """Start indexing ``field``, backfilling from current contents."""
        if field in self._fields:
            return
        if field not in FIELD_GETTERS:
            raise KeyError(f"no getter registered for field {field!r}")
        self._fields.append(field)
        getter = FIELD_GETTERS[field]
        for ctx_type, extent in self._by_type.items():
            by_value = self._buckets.setdefault((ctx_type, field), {})
            for ctx in extent.values():
                by_value.setdefault(getter(ctx), {})[ctx.ctx_id] = ctx

    def rebuild(self, contexts: Iterable[Context]) -> None:
        """Reset to exactly ``contexts`` (in the given order)."""
        self.on_clear()
        for ctx in contexts:
            self.on_add(ctx)

    # -- queries --

    def extent(self, ctx_type: str) -> Sequence[Context]:
        """All contexts of ``ctx_type``, in arrival order."""
        extent = self._by_type.get(ctx_type)
        # A miss shares one empty view instead of allocating a fresh
        # ``{}.values()`` per probe (hot path: every non-joined
        # position of every constraint probes here per detect).
        return extent.values() if extent is not None else _EMPTY_VALUES

    def extent_size(self, ctx_type: str) -> int:
        extent = self._by_type.get(ctx_type)
        return len(extent) if extent is not None else 0

    def candidates(
        self, ctx_type: str, restrictions: Restrictions
    ) -> Sequence[Context]:
        """Contexts of ``ctx_type`` matching every ``(field, value)``
        restriction, in arrival order."""
        if not restrictions:
            return self.extent(ctx_type)
        field, value = restrictions[0]
        if field not in self._fields:
            self.ensure_field(field)
        by_value = self._buckets.get((ctx_type, field))
        bucket = by_value.get(value) if by_value is not None else None
        if not bucket:
            return ()
        matches = bucket.values()
        if len(restrictions) == 1:
            return matches
        rest = [(FIELD_GETTERS[f], v) for f, v in restrictions[1:]]
        return [
            ctx
            for ctx in matches
            if all(getter(ctx) == v for getter, v in rest)
        ]

    def contents(self) -> List[Context]:
        """Every indexed context (arrival order within each type)."""
        return [ctx for extent in self._by_type.values() for ctx in extent.values()]


class EphemeralScopeIndex:
    """The :class:`CandidateIndex` query interface over a scope list.

    Built once per ``detect`` call when the checking scope differs
    from the attached pool (or no pool is attached); buckets are
    materialised lazily per queried ``(type, field)``.
    """

    def __init__(self, contexts: Sequence[Context]) -> None:
        self._by_type: Dict[str, List[Context]] = {}
        for ctx in contexts:
            self._by_type.setdefault(ctx.ctx_type, []).append(ctx)
        self._buckets: Dict[Tuple[str, str], Dict[object, List[Context]]] = {}

    def extent(self, ctx_type: str) -> Sequence[Context]:
        return self._by_type.get(ctx_type, ())

    def extent_size(self, ctx_type: str) -> int:
        return len(self._by_type.get(ctx_type, ()))

    def candidates(
        self, ctx_type: str, restrictions: Restrictions
    ) -> Sequence[Context]:
        if not restrictions:
            return self.extent(ctx_type)
        field, value = restrictions[0]
        key = (ctx_type, field)
        by_value = self._buckets.get(key)
        if by_value is None:
            getter = FIELD_GETTERS[field]
            by_value = {}
            for ctx in self._by_type.get(ctx_type, ()):
                by_value.setdefault(getter(ctx), []).append(ctx)
            self._buckets[key] = by_value
        matches = by_value.get(value, ())
        if len(restrictions) == 1 or not matches:
            return matches
        rest = [(FIELD_GETTERS[f], v) for f, v in restrictions[1:]]
        return [
            ctx
            for ctx in matches
            if all(getter(ctx) == v for getter, v in rest)
        ]


_INF = float("inf")


def _min_expiry(contexts: Sequence[Context]) -> float:
    lowest = _INF
    for ctx in contexts:
        expiry = ctx.expiry
        if expiry < lowest:
            lowest = expiry
    return lowest


class BatchOverlayView:
    """One detect_batch row's checking scope, without copying the pool.

    Batched detection evaluates row ``k`` of a batch against the scope
    a sequential sweep would have given it: the base scope as of the
    batch start, **minus** contexts that have expired by the row's
    clock, **plus** the earlier batch rows that joined the pool.  This
    view presents exactly that through the candidate-index query
    interface (:meth:`extent` / :meth:`extent_size` /
    :meth:`candidates`), composing three layers:

    * a *base* index (:class:`CandidateIndex` or
      :class:`EphemeralScopeIndex`) probed **once per distinct
      (type, field, value) group per batch** -- results land in the
      caller-supplied ``probe_memo`` keyed on the probe's canonical
      form, the per-batch subexpression sharing of the guard/join
      layer (hits and misses are counted for the
      ``subexpr_memo_{hits,misses}_total`` telemetry series).  The
      memo may outlive one batch: the checker stamps it with
      ``(registry.version, index.generation)`` and flushes it when
      either moves (predicate replacement / pool mutation);
    * an *overlay* of batch rows appended via :meth:`append` as the
      sweep admits them, in arrival order behind the base extent --
      exactly where a pool add would have put them;
    * a per-row expiry *cutoff* (:meth:`set_cutoff`): contexts with
      ``expiry <= cutoff`` are invisible, which is precisely the
      ``is_expired`` condition the sequential sweep removes on.

    Probe results are byte-identical, including order, to an index
    over the swept pool at the row's clock.  The filtering is
    *amortized*: every layer tracks its minimum live expiry and only
    rescans when the cutoff actually crosses it, so a context is
    filtered out of a given probe group at most once per batch, and
    repeated probes of one group inside one row hit a stamped combined
    cache.  Returned sequences are snapshots -- later appends or
    cutoff moves never mutate a sequence already handed out.
    """

    def __init__(self, base, probe_memo: Dict) -> None:
        self._base = base
        # key -> [full tuple, live list, min live expiry, cutoff,
        # epoch] (shared across batches; holds base contexts only; the
        # epoch bumps whenever the live list is replaced, stamping the
        # combined cache below).
        self._memo = probe_memo
        self._rows: Dict[str, List[Context]] = {}
        # key -> [live matches, min live expiry, rows consumed,
        # cutoff, epoch]
        self._matches: Dict[Tuple, List] = {}
        # key -> (combined list, (base epoch, match epoch, match len))
        self._combined: Dict[Tuple, Tuple] = {}
        self._cutoff = float("-inf")
        # ctx_type -> live extent size at the current cutoff; several
        # constraints ask for the same extent size within one row.
        self._sizes: Dict[str, int] = {}
        # Row-level result cache: several constraints re-probe the
        # same group within one row (shared join structure), and
        # nothing can change between those probes.  key -> (result,
        # (cutoff, per-type append count)); stale stamps fall through
        # to the layered walk.
        self._results: Dict[Tuple, Tuple] = {}
        self._appends: Dict[str, int] = {}
        self.memo_hits = 0
        self.memo_misses = 0

    def set_cutoff(self, now: float) -> None:
        """Hide contexts with ``expiry <= now`` from subsequent probes."""
        if now != self._cutoff:
            self._cutoff = now
            self._sizes.clear()

    def append(self, ctx: Context) -> None:
        """A batch row joined the scope for all later rows."""
        self._rows.setdefault(ctx.ctx_type, []).append(ctx)
        self._sizes.pop(ctx.ctx_type, None)
        self._appends[ctx.ctx_type] = self._appends.get(ctx.ctx_type, 0) + 1

    def _base_entry(self, key: Tuple) -> List:
        entry = self._memo.get(key)
        if entry is None:
            self.memo_misses += 1
            ctx_type, restrictions = key
            if restrictions:
                full = tuple(self._base.candidates(ctx_type, restrictions))
            else:
                full = tuple(self._base.extent(ctx_type))
            entry = [full, full, _min_expiry(full), float("-inf"), 0]
            self._memo[key] = entry
        else:
            self.memo_hits += 1
        cutoff = self._cutoff
        if cutoff != entry[3]:
            if cutoff < entry[3]:
                # The clock went backwards (a fresh batch over an
                # unchanged pool): restart from the full result.
                entry[1] = entry[0]
                entry[2] = _min_expiry(entry[0])
                entry[4] += 1
            entry[3] = cutoff
            if entry[2] <= cutoff:
                lowest = _INF
                live = []
                for ctx in entry[1]:
                    expiry = ctx.expiry
                    if expiry > cutoff:
                        live.append(ctx)
                        if expiry < lowest:
                            lowest = expiry
                entry[1] = live
                entry[2] = lowest
                entry[4] += 1
        return entry

    def _match_entry(self, key: Tuple) -> Optional[List]:
        ctx_type, restrictions = key
        rows = self._rows.get(ctx_type)
        if not rows:
            return None
        cutoff = self._cutoff
        entry = self._matches.get(key)
        if entry is None:
            entry = self._matches[key] = [[], _INF, 0, cutoff, 0]
        elif cutoff < entry[3]:
            # The clock went backwards (legal, if unusual), which
            # could resurrect an already filtered row: reconsume the
            # overlay from the top.  The entry object is reused so its
            # epoch keeps counting up (the combined-cache stamp).
            entry[0] = []
            entry[1] = _INF
            entry[2] = 0
            entry[3] = cutoff
            entry[4] += 1
        else:
            entry[3] = cutoff
        live, lowest, consumed = entry[0], entry[1], entry[2]
        if consumed < len(rows):
            if restrictions:
                rest = [(FIELD_GETTERS[f], v) for f, v in restrictions]
                for ctx in rows[consumed:]:
                    if all(getter(ctx) == v for getter, v in rest):
                        live.append(ctx)
                        if ctx.expiry < lowest:
                            lowest = ctx.expiry
            else:
                for ctx in rows[consumed:]:
                    live.append(ctx)
                    if ctx.expiry < lowest:
                        lowest = ctx.expiry
            entry[2] = len(rows)
        if lowest <= cutoff:
            lowest = _INF
            filtered = []
            for ctx in live:
                expiry = ctx.expiry
                if expiry > cutoff:
                    filtered.append(ctx)
                    if expiry < lowest:
                        lowest = expiry
            live = filtered
            entry[0] = live
            entry[4] += 1
        entry[1] = lowest
        return entry

    def _probe(
        self, ctx_type: str, restrictions: Tuple
    ) -> Sequence[Context]:
        key = (ctx_type, restrictions)
        stamp = (self._cutoff, self._appends.get(ctx_type, 0))
        cached = self._results.get(key)
        if cached is not None and cached[1] == stamp:
            self.memo_hits += 1
            return cached[0]
        result = self._probe_layers(key)
        self._results[key] = (result, stamp)
        return result

    def _probe_layers(self, key: Tuple) -> Sequence[Context]:
        base_entry = self._base_entry(key)
        match_entry = self._match_entry(key)
        if match_entry is None or not match_entry[0]:
            return base_entry[1]
        # Live lists are only ever *appended* in place (overlay
        # consumption); any replacement bumps the owning entry's
        # epoch.  So the combined snapshot stays valid while both
        # epochs and the match count hold -- cutoff moves that
        # filtered nothing reuse it.
        stamp = (base_entry[4], match_entry[4], len(match_entry[0]))
        cached = self._combined.get(key)
        if cached is not None and cached[1] == stamp:
            return cached[0]
        combined = list(base_entry[1])
        combined.extend(match_entry[0])
        self._combined[key] = (combined, stamp)
        return combined

    def extent(self, ctx_type: str) -> Sequence[Context]:
        return self._probe(ctx_type, ())

    def extent_size(self, ctx_type: str) -> int:
        # Same live count as ``len(extent(...))`` without materialising
        # the combined list (this is called per position for pruning
        # accounting, usually without a matching extent() probe);
        # memoized per (type, cutoff) since every constraint over the
        # type asks again within one row.
        size = self._sizes.get(ctx_type)
        if size is None:
            key = (ctx_type, ())
            size = len(self._base_entry(key)[1])
            match_entry = self._match_entry(key)
            if match_entry is not None:
                size += len(match_entry[0])
            self._sizes[ctx_type] = size
        return size

    def candidates(
        self, ctx_type: str, restrictions: Restrictions
    ) -> Sequence[Context]:
        if not restrictions:
            return self._probe(ctx_type, ())
        return self._probe(ctx_type, tuple(restrictions))
