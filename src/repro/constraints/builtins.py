"""Predicate function registry and the standard predicate library.

Constraint formulas apply *named* boolean functions to bound contexts
and literals; the names are resolved against a
:class:`FunctionRegistry` at evaluation time.  This keeps formulas
serializable/hashable and lets applications register domain predicates
(velocity bounds, zone membership, RFID flow order, ...) next to the
generic ones provided here.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..core.context import Context

__all__ = ["FunctionRegistry", "standard_registry"]

PredicateFn = Callable[..., bool]


class FunctionRegistry:
    """Name -> boolean function mapping used by the evaluator.

    Functions receive the resolved predicate arguments (contexts for
    variables, raw values for literals) and return a ``bool``.  A
    registry also carries a ``now`` attribute that time-dependent
    predicates (freshness checks) may read; the constraint checker
    updates it before each detection pass.
    """

    def __init__(self) -> None:
        self._functions: Dict[str, PredicateFn] = {}
        #: Current simulation time, updated by the checker.
        self.now: float = 0.0
        #: Bumped on every register/replace; compiled kernels pre-bind
        #: resolved functions and use this to detect staleness.
        #: (Mutating ``now`` does *not* bump it -- predicates read
        #: ``now`` through the registry, never a captured copy.)
        self.version: int = 0

    def register(self, name: str, fn: Optional[PredicateFn] = None):
        """Register ``fn`` under ``name``; usable as a decorator."""

        def _do_register(f: PredicateFn) -> PredicateFn:
            if name in self._functions:
                raise ValueError(f"predicate {name!r} already registered")
            self._functions[name] = f
            self.version += 1
            return f

        if fn is None:
            return _do_register
        return _do_register(fn)

    def replace(self, name: str, fn: PredicateFn) -> None:
        """Register or overwrite ``name`` (for test doubles)."""
        self._functions[name] = fn
        self.version += 1

    def resolve(self, name: str) -> PredicateFn:
        try:
            return self._functions[name]
        except KeyError:
            known = ", ".join(sorted(self._functions))
            raise KeyError(
                f"unknown predicate {name!r}; known: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        return sorted(self._functions)


def _position(ctx: Context) -> tuple:
    return ctx.position


def standard_registry() -> FunctionRegistry:
    """A registry pre-loaded with the generic predicate library.

    Provided predicates (all take contexts unless noted):

    * ``same_subject(a, b)`` / ``distinct(a, b)`` / ``same_type(a, b)``
    * ``before(a, b)`` / ``after(a, b)`` -- timestamp order (strict)
    * ``within_time(a, b, dt)`` -- |t_a - t_b| <= dt
    * ``older_than(a, dt)`` -- registry.now - t_a > dt
    * ``distance_le(a, b, d)`` / ``distance_ge(a, b, d)``
    * ``velocity_le(a, b, vmax)`` -- displacement / |Δt| <= vmax
    * ``attr_eq(a, key, value)`` / ``attr_ne(a, key, value)``
    * ``value_eq(a, value)`` / ``value_in(a, collection)``
    * ``true()`` / ``false()`` -- constants, mostly for tests
    """
    registry = FunctionRegistry()

    @registry.register("same_subject")
    def same_subject(a: Context, b: Context) -> bool:
        return a.subject == b.subject

    @registry.register("distinct")
    def distinct(a: Context, b: Context) -> bool:
        return a.ctx_id != b.ctx_id

    @registry.register("same_type")
    def same_type(a: Context, b: Context) -> bool:
        return a.ctx_type == b.ctx_type

    @registry.register("before")
    def before(a: Context, b: Context) -> bool:
        return a.timestamp < b.timestamp

    @registry.register("after")
    def after(a: Context, b: Context) -> bool:
        return a.timestamp > b.timestamp

    @registry.register("within_time")
    def within_time(a: Context, b: Context, dt: float) -> bool:
        return abs(a.timestamp - b.timestamp) <= dt

    @registry.register("older_than")
    def older_than(a: Context, dt: float) -> bool:
        return (registry.now - a.timestamp) > dt

    @registry.register("distance_le")
    def distance_le(a: Context, b: Context, d: float) -> bool:
        return a.distance_to(b) <= d

    @registry.register("distance_ge")
    def distance_ge(a: Context, b: Context, d: float) -> bool:
        return a.distance_to(b) >= d

    @registry.register("velocity_le")
    def velocity_le(a: Context, b: Context, vmax: float) -> bool:
        """Estimated walking velocity between two location contexts.

        Contexts with (almost) identical timestamps cannot produce a
        finite velocity estimate; they are treated as satisfying the
        bound only if they are (almost) co-located.
        """
        dt = abs(a.timestamp - b.timestamp)
        dist = a.distance_to(b)
        if dt < 1e-9:
            return dist < 1e-9
        return dist / dt <= vmax

    @registry.register("attr_eq")
    def attr_eq(a: Context, key: str, value: Any) -> bool:
        return a.attr(key) == value

    @registry.register("attr_ne")
    def attr_ne(a: Context, key: str, value: Any) -> bool:
        return a.attr(key) != value

    @registry.register("value_eq")
    def value_eq(a: Context, value: Any) -> bool:
        return a.value == value

    @registry.register("value_in")
    def value_in(a: Context, collection: Iterable[Any]) -> bool:
        return a.value in collection

    @registry.register("true")
    def true_fn() -> bool:
        return True

    @registry.register("false")
    def false_fn() -> bool:
        return False

    return registry
