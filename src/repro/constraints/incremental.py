"""Incremental constraint checking (the ICSE'06 [17] substrate).

Re-evaluating every constraint over the whole pool on each context
arrival is wasteful: contexts arrive continuously and most of the pool
did not change.  The incremental engine exploits the structure the
paper's constraints actually have -- a prefix of universal quantifiers
over context types with a quantifier-free body -- to evaluate **only
the new bindings**, i.e. the tuples in which the newly added context
occupies at least one quantified position.

For such *prefix-universal* constraints this is exactly equivalent to
full evaluation filtered down to violations involving the new context
(a property-based test asserts the equivalence on random streams).

The fast path also covers bodies containing existential quantifiers in
*positive* positions (e.g. "every checkout read has an earlier shelf
read"): adding a context is monotone for a positive existential -- it
can newly *satisfy* the body for old bindings but never newly violate
it -- so new violations still only arise from bindings that include
the new context.  Bodies with nested universals or negated
existentials transparently fall back to full evaluation with link
filtering, so the engine is complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.context import Context
from .ast import Constraint, Existential, Formula, Universal
from .builtins import FunctionRegistry
from .compile import CompiledKernel, compile_kernel
from .evaluator import Domain, Evaluator
from .index import (
    FIELD_GETTERS,
    EphemeralScopeIndex,
    JoinAnalysis,
    analyze_joins,
)

__all__ = [
    "PrefixAnalysis",
    "analyze_prefix",
    "ConstraintPlan",
    "IncrementalEngine",
]


@dataclass(frozen=True)
class PrefixAnalysis:
    """Result of analysing a constraint for the incremental fast path.

    ``vars_types`` is the (variable, context type) list of the
    universal prefix and ``body`` the quantifier-free matrix, or
    ``None`` when the constraint is outside the fragment.
    """

    vars_types: Optional[Tuple[Tuple[str, str], ...]]
    body: Optional[Formula]

    @property
    def is_prefix_universal(self) -> bool:
        return self.vars_types is not None


def _body_is_addition_monotone(formula: Formula, positive: bool = True) -> bool:
    """Whether adding pool contexts can never newly violate ``formula``
    for a fixed binding of its free variables.

    True when the body has no universal quantifiers and every
    existential occurs in a positive position.
    """
    from .ast import And, Implies, Not, Or, Predicate

    if isinstance(formula, Predicate):
        return True
    if isinstance(formula, Universal):
        return False
    if isinstance(formula, Existential):
        return positive and _body_is_addition_monotone(formula.body, positive)
    if isinstance(formula, Not):
        return _body_is_addition_monotone(formula.operand, not positive)
    if isinstance(formula, (And, Or)):
        return _body_is_addition_monotone(
            formula.left, positive
        ) and _body_is_addition_monotone(formula.right, positive)
    if isinstance(formula, Implies):
        return _body_is_addition_monotone(
            formula.left, not positive
        ) and _body_is_addition_monotone(formula.right, positive)
    return False


def analyze_prefix(constraint: Constraint) -> PrefixAnalysis:
    """Extract the universal prefix and addition-monotone body, if any."""
    vars_types: List[Tuple[str, str]] = []
    node: Formula = constraint.formula
    while isinstance(node, Universal):
        vars_types.append((node.var, node.ctx_type))
        node = node.body
    if vars_types and _body_is_addition_monotone(node):
        return PrefixAnalysis(tuple(vars_types), node)
    return PrefixAnalysis(None, None)


@dataclass(frozen=True)
class ConstraintPlan:
    """Everything precomputed about one constraint at add time.

    ``kernel`` is the compiled body kernel (parameters in prefix-
    variable order) or ``None`` for out-of-fragment bodies or when
    kernels are disabled.  ``restrict[p][q]`` lists the fields that
    position ``q`` must share with a context pinned at position ``p``
    (empty tuple when unconstrained -- including ``q == p``).
    """

    analysis: PrefixAnalysis
    var_names: Tuple[str, ...]
    kernel: Optional[CompiledKernel]
    joins: JoinAnalysis
    restrict: Tuple[Tuple[Tuple[str, ...], ...], ...]

    def join_fields(self) -> Tuple[str, ...]:
        """Distinct fields any of this plan's joins prune on."""
        return tuple(sorted({field for field, _ in self.joins.groups}))


_NO_JOINS = JoinAnalysis(())


class IncrementalEngine:
    """Computes the violations a newly added context introduces.

    Parameters
    ----------
    registry:
        Predicate registry shared with the full evaluator.
    enabled:
        When ``False`` every constraint uses the full-evaluation path;
        used by the equivalence tests and by benchmarks measuring the
        incremental speed-up.
    kernels:
        When ``True`` (default), prefix-universal bodies run through
        compiled kernels (:mod:`.compile`) and candidate enumeration
        is pruned by equality-join indexes (:mod:`.index`).  When
        ``False`` the engine is the pure interpreted reference path.

    The engine keeps four cumulative statistics that the checker turns
    into telemetry counters: ``bindings_enumerated`` /
    ``bindings_pruned`` count candidate bindings actually evaluated
    vs. skipped by join pruning (computed arithmetically, not per
    binding), and ``kernel_hits`` / ``interpreter_fallbacks`` count
    per-constraint evaluations that used a compiled kernel vs. the
    interpreter (out-of-fragment bodies and non-prefix-universal
    constraints).
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        enabled: bool = True,
        kernels: bool = True,
    ) -> None:
        self._registry = registry
        self._evaluator = Evaluator(registry, use_kernels=kernels)
        self._enabled = enabled
        self._kernels = kernels
        self._plans: Dict[str, ConstraintPlan] = {}
        self._plans_version = registry.version
        self.bindings_enumerated = 0
        self.bindings_pruned = 0
        self.kernel_hits = 0
        self.interpreter_fallbacks = 0

    def plan_for(self, constraint: Constraint) -> ConstraintPlan:
        """The (cached) execution plan for ``constraint``.

        Plans pre-bind resolved predicate functions, so the cache is
        flushed whenever the registry version moves.
        """
        if self._plans_version != self._registry.version:
            self._plans.clear()
            self._plans_version = self._registry.version
        plan = self._plans.get(constraint.name)
        if plan is None:
            plan = self._build_plan(constraint)
            self._plans[constraint.name] = plan
        return plan

    def _build_plan(self, constraint: Constraint) -> ConstraintPlan:
        analysis = analyze_prefix(constraint)
        if not analysis.is_prefix_universal:
            return ConstraintPlan(analysis, (), None, _NO_JOINS, ())
        assert analysis.vars_types is not None and analysis.body is not None
        var_names = tuple(var for var, _ in analysis.vars_types)
        kernel = None
        joins = _NO_JOINS
        restrict: Tuple[Tuple[Tuple[str, ...], ...], ...] = ()
        if self._kernels:
            kernel = compile_kernel(analysis.body, var_names, self._registry)
            joins = analyze_joins(analysis.vars_types, analysis.body)
            size = len(var_names)
            restrict = tuple(
                tuple(
                    joins.fields_joining(p, q) if q != p else ()
                    for q in range(size)
                )
                for p in range(size)
            )
        return ConstraintPlan(analysis, var_names, kernel, joins, restrict)

    # -- detection -------------------------------------------------------

    def new_violations(
        self,
        constraint: Constraint,
        ctx: Context,
        scope: Sequence[Context],
        domain: Domain,
        view=None,
    ) -> List[FrozenSet[Context]]:
        """Violations of ``constraint`` that involve ``ctx``.

        ``scope`` is the pre-existing checking scope (``ctx`` NOT
        included); ``domain`` must present the extended scope
        (``scope`` plus ``ctx``) to the full evaluator.  ``view`` is an
        optional candidate index over exactly ``scope`` (a
        :class:`~repro.constraints.index.CandidateIndex` or
        :class:`~repro.constraints.index.EphemeralScopeIndex`); the
        checker builds one per detect call and shares it across
        constraints so per-constraint ``by_type`` rebuilds disappear.
        """
        plan = self.plan_for(constraint)
        if self._enabled and plan.analysis.is_prefix_universal:
            if view is None:
                view = EphemeralScopeIndex(scope)
            return self._fast_path(plan, ctx, view, domain)
        self.interpreter_fallbacks += 1
        return [
            contexts
            for contexts in self._evaluator.violations(constraint, domain)
            if ctx in contexts
        ]

    def _fast_path(
        self,
        plan: ConstraintPlan,
        ctx: Context,
        view,
        domain: Domain,
    ) -> List[FrozenSet[Context]]:
        analysis = plan.analysis
        assert analysis.vars_types is not None and analysis.body is not None
        vars_types = analysis.vars_types
        ctx_positions = [
            index
            for index, (_, ctx_type) in enumerate(vars_types)
            if ctx_type == ctx.ctx_type
        ]
        if not ctx_positions:
            # ctx's type is not quantified by this constraint.
            return []

        # For each position p that can hold ctx, pin ctx there,
        # restrict earlier pinnable positions to exclude ctx (avoiding
        # duplicate enumeration), and cross the remaining candidate
        # pools.  The view covers scope only (ctx is added below), and
        # join-restricted pools are order-preserving subsequences of
        # the full extents, so surviving bindings -- hence violations
        # -- come out in exactly the unpruned enumeration order.
        body = analysis.body
        kernel = plan.kernel
        var_names = plan.var_names
        seen: Set[FrozenSet[Context]] = set()
        violations: List[FrozenSet[Context]] = []
        enumerated = 0
        full = 0
        earlier: Set[int] = set()
        for position in ctx_positions:
            pools: List[Sequence[Context]] = []
            pool_product = 1
            full_product = 1
            restrict_row = plan.restrict[position] if plan.restrict else None
            for index, (_, ctx_type) in enumerate(vars_types):
                if index == position:
                    pools.append((ctx,))
                    continue
                fields = restrict_row[index] if restrict_row else ()
                if fields:
                    pool: Sequence[Context] = view.candidates(
                        ctx_type,
                        [(f, FIELD_GETTERS[f](ctx)) for f in fields],
                    )
                else:
                    pool = view.extent(ctx_type)
                extent_size = view.extent_size(ctx_type)
                if ctx_type == ctx.ctx_type and index not in earlier:
                    # A later pinnable position: ctx itself is a
                    # candidate there too (it trivially satisfies any
                    # join with itself), appended in arrival order.
                    pool = list(pool)
                    pool.append(ctx)
                    extent_size += 1
                pools.append(pool)
                pool_product *= len(pool)
                full_product *= extent_size
            earlier.add(position)
            enumerated += pool_product
            full += full_product
            if not pool_product:
                continue

            if kernel is not None:
                fn = kernel.fn
                for binding in itertools.product(*pools):
                    # Truth first (cheap); links only for violations.
                    if fn(*binding, domain):
                        continue
                    result = self._evaluator.evaluate(
                        body, domain, dict(zip(var_names, binding, strict=True))
                    )
                    for link in result.vio_links:
                        contexts = link.contexts()
                        if ctx in contexts and contexts not in seen:
                            seen.add(contexts)
                            violations.append(contexts)
            else:
                for binding in itertools.product(*pools):
                    env = dict(zip(var_names, binding, strict=True))
                    # ``domain`` serves any existentials inside the
                    # body; it is unused for quantifier-free bodies.
                    if self._evaluator.truth(body, domain, env):
                        continue
                    result = self._evaluator.evaluate(body, domain, env)
                    for link in result.vio_links:
                        contexts = link.contexts()
                        if ctx in contexts and contexts not in seen:
                            seen.add(contexts)
                            violations.append(contexts)

        self.bindings_enumerated += enumerated
        self.bindings_pruned += full - enumerated
        if kernel is not None:
            self.kernel_hits += 1
        else:
            self.interpreter_fallbacks += 1
        return violations
