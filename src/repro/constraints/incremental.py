"""Incremental constraint checking (the ICSE'06 [17] substrate).

Re-evaluating every constraint over the whole pool on each context
arrival is wasteful: contexts arrive continuously and most of the pool
did not change.  The incremental engine exploits the structure the
paper's constraints actually have -- a prefix of universal quantifiers
over context types with a quantifier-free body -- to evaluate **only
the new bindings**, i.e. the tuples in which the newly added context
occupies at least one quantified position.

For such *prefix-universal* constraints this is exactly equivalent to
full evaluation filtered down to violations involving the new context
(a property-based test asserts the equivalence on random streams).

The fast path also covers bodies containing existential quantifiers in
*positive* positions (e.g. "every checkout read has an earlier shelf
read"): adding a context is monotone for a positive existential -- it
can newly *satisfy* the body for old bindings but never newly violate
it -- so new violations still only arise from bindings that include
the new context.  Bodies with nested universals or negated
existentials transparently fall back to full evaluation with link
filtering, so the engine is complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.context import Context
from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from .builtins import FunctionRegistry
from .compile import (
    BatchKernel,
    CompiledKernel,
    GroupKernel,
    compile_batch_kernel,
    compile_group_kernel,
    compile_kernel,
)
from .evaluator import Domain, Evaluator
from .index import (
    EQUALITY_PREDICATES,
    FIELD_GETTERS,
    EphemeralScopeIndex,
    JoinAnalysis,
    analyze_joins,
)
from .normalize import canonical_key

__all__ = [
    "PrefixAnalysis",
    "analyze_prefix",
    "ConstraintPlan",
    "GroupPlan",
    "IncrementalEngine",
]


@dataclass(frozen=True)
class PrefixAnalysis:
    """Result of analysing a constraint for the incremental fast path.

    ``vars_types`` is the (variable, context type) list of the
    universal prefix and ``body`` the quantifier-free matrix, or
    ``None`` when the constraint is outside the fragment.
    """

    vars_types: Optional[Tuple[Tuple[str, str], ...]]
    body: Optional[Formula]

    @property
    def is_prefix_universal(self) -> bool:
        return self.vars_types is not None


def _body_is_addition_monotone(formula: Formula, positive: bool = True) -> bool:
    """Whether adding pool contexts can never newly violate ``formula``
    for a fixed binding of its free variables.

    True when the body has no universal quantifiers and every
    existential occurs in a positive position.
    """
    from .ast import And, Implies, Not, Or, Predicate

    if isinstance(formula, Predicate):
        return True
    if isinstance(formula, Universal):
        return False
    if isinstance(formula, Existential):
        return positive and _body_is_addition_monotone(formula.body, positive)
    if isinstance(formula, Not):
        return _body_is_addition_monotone(formula.operand, not positive)
    if isinstance(formula, (And, Or)):
        return _body_is_addition_monotone(
            formula.left, positive
        ) and _body_is_addition_monotone(formula.right, positive)
    if isinstance(formula, Implies):
        return _body_is_addition_monotone(
            formula.left, not positive
        ) and _body_is_addition_monotone(formula.right, positive)
    return False


def analyze_prefix(constraint: Constraint) -> PrefixAnalysis:
    """Extract the universal prefix and addition-monotone body, if any."""
    vars_types: List[Tuple[str, str]] = []
    node: Formula = constraint.formula
    while isinstance(node, Universal):
        vars_types.append((node.var, node.ctx_type))
        node = node.body
    if vars_types and _body_is_addition_monotone(node):
        return PrefixAnalysis(tuple(vars_types), node)
    return PrefixAnalysis(None, None)


@dataclass(frozen=True)
class ConstraintPlan:
    """Everything precomputed about one constraint at add time.

    ``kernel`` is the compiled body kernel (parameters in prefix-
    variable order) or ``None`` for out-of-fragment bodies or when
    kernels are disabled.  ``batch_kernels[p]`` is the vectorized
    lowering of the same body used when the new context is pinned at
    position ``p`` (one candidate pool per parameter); each variant
    elides the equality guards that pinning at ``p`` makes provably
    true (see :func:`_elidable_guards`), and the tuple is empty when
    batch kernels are disabled or the body did not compile.  All
    kernels may be *shared* across constraints whose bodies are
    structurally identical up to variable renaming (see
    :func:`~repro.constraints.normalize.canonical_key`), so their
    ``var_names`` attribute can spell the sharing constraint's
    variables -- binding environments always use the plan's own
    ``var_names``.  ``restrict[p][q]`` lists the fields that position
    ``q`` must share with a context pinned at position ``p`` (empty
    tuple when unconstrained -- including ``q == p``).
    """

    analysis: PrefixAnalysis
    var_names: Tuple[str, ...]
    kernel: Optional[CompiledKernel]
    joins: JoinAnalysis
    restrict: Tuple[Tuple[Tuple[str, ...], ...], ...]
    batch_kernels: Tuple[Optional[BatchKernel], ...] = ()
    #: Canonical structural key of the body (rename-invariant); keys
    #: the cross-constraint kernel caches.  ``None`` off the fast path.
    canon: Optional[Tuple] = None
    #: Indices into ``var_names`` of the variables bound by the single
    #: violation link every violating binding provably yields (see
    #: :func:`_link_shape`), letting the batched paths materialize the
    #: violation's context set straight from the binding tuple.
    #: ``None`` when the link shape is environment-dependent and the
    #: evaluator must be consulted per violating binding.
    vio_positions: Optional[Tuple[int, ...]] = None

    def join_fields(self) -> Tuple[str, ...]:
        """Distinct fields any of this plan's joins prune on."""
        return tuple(sorted({field for field, _ in self.joins.groups}))


@dataclass(frozen=True)
class GroupPlan:
    """A set of constraints fused into one batched pool sweep.

    Built by :meth:`IncrementalEngine.fusion_plan` for constraints
    whose prefixes quantify the same type sequence with the same join
    structure (``restrict``): their candidate pools are identical for
    any pinned context, so one sweep serves all of them, and
    :class:`~repro.constraints.compile.GroupKernel` additionally
    shares their common guard prefix.  ``names`` / ``plans`` are in
    the order the fused verdict lists come back; ``kernels[p]`` is the
    fused variant for the new context pinned at position ``p``.
    """

    names: Tuple[str, ...]
    plans: Tuple[ConstraintPlan, ...]
    vars_types: Tuple[Tuple[str, str], ...]
    restrict: Tuple[Tuple[Tuple[str, ...], ...], ...]
    kernels: Tuple[Optional[GroupKernel], ...]


_NO_JOINS = JoinAnalysis(())


def _elidable_guards(
    var_names: Tuple[str, ...],
    restrict_row: Tuple[Tuple[str, ...], ...],
    position: int,
) -> Tuple[frozenset, frozenset]:
    """Equality guards provably true when ``position`` is pinned.

    With a context pinned at ``position``, every candidate pool whose
    restriction row names field ``f`` holds only contexts agreeing
    with the pinned context on ``f`` (and the pinned position agrees
    with itself), so by transitivity an equality predicate on ``f``
    between any two such positions is true for every enumerated
    binding -- the batch kernel can emit ``True`` for it and skip the
    call.  Returns the name-based elide set consumed by
    :func:`~repro.constraints.compile.compile_batch_kernel` plus a
    position-based signature that keys the cross-constraint sharing
    cache (rename-invariant, like the canonical body key).

    Like join pruning itself, this trusts
    :data:`~repro.constraints.index.EQUALITY_PREDICATES`: the named
    getters must implement genuine (reflexive) field equality.
    """
    elide = set()
    signature = set()
    for func, field in EQUALITY_PREDICATES.items():
        agree = [position] + [
            q for q, fields in enumerate(restrict_row) if field in fields
        ]
        for a in range(len(agree)):
            for b in range(a + 1, len(agree)):
                i, j = agree[a], agree[b]
                elide.add((func, frozenset((var_names[i], var_names[j]))))
                signature.add((func, (min(i, j), max(i, j))))
    return frozenset(elide), frozenset(signature)


def _link_shape(formula: Formula, violated: bool) -> Optional[FrozenSet[str]]:
    """Variable set of the single explanatory link, when determinate.

    Returns the variable names ``V`` such that for **every**
    environment making ``formula`` false (``violated=True``) or true
    (``violated=False``), the evaluator's corresponding link set is
    exactly one link binding exactly ``V``; ``None`` when the shape
    depends on which subformula failed (a violated conjunction is
    explained only by its failed side) or the node carries
    quantifiers.  Per the evaluator's semantics: predicate links bind
    the predicate's variable arguments, negation swaps the roles, the
    cross-joined side (satisfied conjunction / violated disjunction)
    unions the variable sets, and the union side (violated
    conjunction / satisfied disjunction) is determinate only when both
    branches provably yield the *same* link -- under one environment,
    equal variable sets mean equal links, so the union still holds one.
    """
    if isinstance(formula, Predicate):
        return frozenset(
            term.name for term in formula.args if isinstance(term, Var)
        )
    if isinstance(formula, Not):
        return _link_shape(formula.operand, not violated)
    if isinstance(formula, Implies):
        formula = Or(Not(formula.left), formula.right)
    if isinstance(formula, (And, Or)):
        left = _link_shape(formula.left, violated)
        right = _link_shape(formula.right, violated)
        if left is None or right is None:
            return None
        if violated == isinstance(formula, Or):
            return left | right
        return left if left == right else None
    return None


class IncrementalEngine:
    """Computes the violations a newly added context introduces.

    Parameters
    ----------
    registry:
        Predicate registry shared with the full evaluator.
    enabled:
        When ``False`` every constraint uses the full-evaluation path;
        used by the equivalence tests and by benchmarks measuring the
        incremental speed-up.
    kernels:
        When ``True`` (default), prefix-universal bodies run through
        compiled kernels (:mod:`.compile`) and candidate enumeration
        is pruned by equality-join indexes (:mod:`.index`).  When
        ``False`` the engine is the pure interpreted reference path.
    batch_kernels:
        When ``True`` (default; requires ``kernels``), plans also
        carry per-pinned-position vectorized
        :class:`~repro.constraints.compile.BatchKernel` variants
        (with join-guaranteed equality guards elided), used
        exclusively by the batched detection path
        (``new_violations(..., batched=True)``).  The per-context
        path never consults them, so sequential detection speed is
        unaffected either way.

    Compiled kernels are shared **across constraints**: plan building
    keys both lowerings on the body's canonical structural key
    (:func:`~repro.constraints.normalize.canonical_key`), so
    constraint families stamped out from one template -- same shape,
    different names/literals bound elsewhere -- compile once.  The
    cache lives and dies with the plan cache (flushed on registry
    version bumps, which is what invalidates pre-bound predicates).

    The engine keeps cumulative statistics that the checker turns
    into telemetry counters: ``bindings_enumerated`` /
    ``bindings_pruned`` count candidate bindings actually evaluated
    vs. skipped by join pruning (computed arithmetically, not per
    binding), ``kernel_hits`` / ``interpreter_fallbacks`` count
    per-constraint evaluations that used a compiled kernel vs. the
    interpreter (out-of-fragment bodies and non-prefix-universal
    constraints), and ``subexpr_memo_hits`` / ``subexpr_memo_misses``
    count canonical-key cache probes at plan-build time.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        enabled: bool = True,
        kernels: bool = True,
        batch_kernels: bool = True,
    ) -> None:
        self._registry = registry
        self._evaluator = Evaluator(registry, use_kernels=kernels)
        self._enabled = enabled
        self._kernels = kernels
        self._batch_kernels = batch_kernels and kernels
        self._plans: Dict[str, ConstraintPlan] = {}
        # Tagged canonical keys -> compiled kernels, shared across
        # structurally identical constraints; flushed with the plans.
        self._canon: Dict[Tuple, object] = {}
        # (constraint name tuple) -> fusion units, for detect_batch.
        self._group_cache: Dict[Tuple[str, ...], List] = {}
        self._plans_version = registry.version
        self.bindings_enumerated = 0
        self.bindings_pruned = 0
        self.kernel_hits = 0
        self.interpreter_fallbacks = 0
        self.subexpr_memo_hits = 0
        self.subexpr_memo_misses = 0

    def plan_for(self, constraint: Constraint) -> ConstraintPlan:
        """The (cached) execution plan for ``constraint``.

        Plans pre-bind resolved predicate functions, so the cache is
        flushed whenever the registry version moves.
        """
        if self._plans_version != self._registry.version:
            self._plans.clear()
            self._canon.clear()
            self._group_cache.clear()
            self._plans_version = self._registry.version
        plan = self._plans.get(constraint.name)
        if plan is None:
            plan = self._build_plan(constraint)
            self._plans[constraint.name] = plan
        return plan

    def _compile_shared(
        self,
        body: Formula,
        var_names: Tuple[str, ...],
        restrict: Tuple[Tuple[Tuple[str, ...], ...], ...],
    ):
        """Kernels for ``body``, shared via canonical structural keys.

        The per-binding kernel is keyed on the body's canonical key
        alone; each per-position batch-kernel variant additionally
        keys on its (position-based, hence rename-invariant) guard
        elision signature, so two constraints share a variant exactly
        when their bodies *and* their join structure line up.
        """
        canon = canonical_key(body, var_names)
        key = ("kernel", canon)
        if key in self._canon:
            self.subexpr_memo_hits += 1
            kernel = self._canon[key]
        else:
            self.subexpr_memo_misses += 1
            kernel = compile_kernel(body, var_names, self._registry)
            self._canon[key] = kernel
        if kernel is None or not self._batch_kernels:
            return kernel, (), canon
        batch_kernels: List[Optional[BatchKernel]] = []
        for position in range(len(var_names)):
            elide, signature = _elidable_guards(
                var_names, restrict[position], position
            )
            bkey = ("batch", canon, signature)
            if bkey in self._canon:
                self.subexpr_memo_hits += 1
                batch_kernels.append(self._canon[bkey])
            else:
                self.subexpr_memo_misses += 1
                variant = compile_batch_kernel(
                    body, var_names, self._registry, elide
                )
                self._canon[bkey] = variant
                batch_kernels.append(variant)
        return kernel, tuple(batch_kernels), canon

    def _build_plan(self, constraint: Constraint) -> ConstraintPlan:
        analysis = analyze_prefix(constraint)
        if not analysis.is_prefix_universal:
            return ConstraintPlan(analysis, (), None, _NO_JOINS, ())
        assert analysis.vars_types is not None and analysis.body is not None
        var_names = tuple(var for var, _ in analysis.vars_types)
        kernel = None
        batch_kernels: Tuple[Optional[BatchKernel], ...] = ()
        canon = None
        joins = _NO_JOINS
        restrict: Tuple[Tuple[Tuple[str, ...], ...], ...] = ()
        if self._kernels:
            joins = analyze_joins(analysis.vars_types, analysis.body)
            size = len(var_names)
            restrict = tuple(
                tuple(
                    joins.fields_joining(p, q) if q != p else ()
                    for q in range(size)
                )
                for p in range(size)
            )
            kernel, batch_kernels, canon = self._compile_shared(
                analysis.body, var_names, restrict
            )
        shape = _link_shape(analysis.body, violated=True)
        vio_positions = (
            tuple(i for i, v in enumerate(var_names) if v in shape)
            if shape is not None and shape <= set(var_names)
            else None
        )
        return ConstraintPlan(
            analysis,
            var_names,
            kernel,
            joins,
            restrict,
            batch_kernels,
            canon,
            vio_positions,
        )

    # -- cross-constraint fusion -----------------------------------------

    def fusion_plan(self, constraints: Sequence[Constraint]) -> List:
        """Partition ``constraints`` into batched execution units.

        Returns a list of units in an order that preserves nothing the
        caller needs (verdicts are re-emitted in the caller's own
        constraint order): each unit is either a single
        :class:`~repro.constraints.ast.Constraint` or a
        :class:`GroupPlan` fusing constraints that quantify the same
        type sequence with the same join structure.  Cached per
        constraint-name tuple; flushed with the plan cache on registry
        version bumps.
        """
        plans = [self.plan_for(c) for c in constraints]  # flushes stale
        names = tuple(c.name for c in constraints)
        cached = self._group_cache.get(names)
        if cached is not None:
            return cached
        buckets: Dict[Tuple, List[int]] = {}
        if self._enabled and self._batch_kernels:
            for i, plan in enumerate(plans):
                if plan.batch_kernels and plan.canon is not None:
                    key = (
                        tuple(t for _, t in plan.analysis.vars_types),
                        plan.restrict,
                    )
                    buckets.setdefault(key, []).append(i)
        fused: Dict[int, GroupPlan] = {}
        grouped: set = set()
        for members in buckets.values():
            if len(members) < 2:
                continue
            group = self._build_group(
                [constraints[i] for i in members],
                [plans[i] for i in members],
            )
            if group is not None:
                fused[members[0]] = group
                grouped.update(members)
        units: List = []
        for i, constraint in enumerate(constraints):
            if i in fused:
                units.append(fused[i])
            elif i not in grouped:
                units.append(constraint)
        self._group_cache[names] = units
        return units

    def _build_group(
        self,
        constraints: Sequence[Constraint],
        plans: Sequence[ConstraintPlan],
    ) -> Optional[GroupPlan]:
        """Fused per-position kernels for same-shape constraints, or
        ``None`` when any position fails to fuse (callers then keep
        the constraints as singles)."""
        lead = plans[0]
        vars_types = lead.analysis.vars_types
        assert vars_types is not None
        restrict = lead.restrict
        canons = tuple(plan.canon for plan in plans)
        bodies = [plan.analysis.body for plan in plans]
        var_names_list = [plan.var_names for plan in plans]
        kernels: List[Optional[GroupKernel]] = []
        for position in range(len(vars_types)):
            elides = []
            signature: frozenset = frozenset()
            for plan in plans:
                elide, signature = _elidable_guards(
                    plan.var_names, restrict[position], position
                )
                elides.append(elide)
            gkey = ("group", canons, signature)
            if gkey in self._canon:
                self.subexpr_memo_hits += 1
                kernels.append(self._canon[gkey])
            else:
                self.subexpr_memo_misses += 1
                fused = compile_group_kernel(
                    bodies, var_names_list, self._registry, elides
                )
                self._canon[gkey] = fused
                kernels.append(fused)
        if any(kernel is None for kernel in kernels):
            return None
        return GroupPlan(
            names=tuple(c.name for c in constraints),
            plans=tuple(plans),
            vars_types=vars_types,
            restrict=restrict,
            kernels=tuple(kernels),
        )

    def new_violations_group(
        self,
        group: GroupPlan,
        ctx: Context,
        scope: Sequence[Context],
        domain: Domain,
        view=None,
    ) -> List[List[FrozenSet[Context]]]:
        """Violations involving ``ctx``, per fused constraint.

        The fused analogue of ``new_violations(..., batched=True)``
        over every member of ``group`` at once: candidate pools are
        built once per pinned position (the members share their join
        structure by construction) and swept by one
        :class:`~repro.constraints.compile.GroupKernel` call.  Returns
        one violation list per member, aligned with ``group.names``,
        each byte-identical to the member's solo result.
        """
        vars_types = group.vars_types
        ctx_positions = [
            index
            for index, (_, ctx_type) in enumerate(vars_types)
            if ctx_type == ctx.ctx_type
        ]
        members = len(group.plans)
        if not ctx_positions:
            return [[] for _ in range(members)]
        if view is None:
            view = EphemeralScopeIndex(scope)
        seen: List[Set[FrozenSet[Context]]] = [set() for _ in range(members)]
        violations: List[List[FrozenSet[Context]]] = [
            [] for _ in range(members)
        ]
        enumerated = 0
        full = 0
        earlier: Set[int] = set()
        for position in ctx_positions:
            pools: List[Sequence[Context]] = []
            pool_product = 1
            full_product = 1
            restrict_row = group.restrict[position]
            for index, (_, ctx_type) in enumerate(vars_types):
                if index == position:
                    pools.append((ctx,))
                    continue
                fields = restrict_row[index]
                if fields:
                    pool: Sequence[Context] = view.candidates(
                        ctx_type,
                        [(f, FIELD_GETTERS[f](ctx)) for f in fields],
                    )
                else:
                    pool = view.extent(ctx_type)
                extent_size = view.extent_size(ctx_type)
                if ctx_type == ctx.ctx_type and index not in earlier:
                    pool = list(pool)
                    pool.append(ctx)
                    extent_size += 1
                pools.append(pool)
                pool_product *= len(pool)
                full_product *= extent_size
            earlier.add(position)
            enumerated += pool_product * members
            full += full_product * members
            if not pool_product:
                continue
            kernel = group.kernels[position]
            assert kernel is not None
            for k, bindings in enumerate(kernel.fn(*pools, domain)):
                if not bindings:
                    continue
                plan = group.plans[k]
                seen_k = seen[k]
                out_k = violations[k]
                vio_positions = plan.vio_positions
                if vio_positions is not None:
                    for binding in bindings:
                        contexts = frozenset(
                            binding[i] for i in vio_positions
                        )
                        if ctx in contexts and contexts not in seen_k:
                            seen_k.add(contexts)
                            out_k.append(contexts)
                    continue
                body = plan.analysis.body
                var_names = plan.var_names
                for binding in bindings:
                    result = self._evaluator.evaluate(
                        body,
                        domain,
                        dict(zip(var_names, binding, strict=True)),
                    )
                    for link in result.vio_links:
                        contexts = link.contexts()
                        if ctx in contexts and contexts not in seen_k:
                            seen_k.add(contexts)
                            out_k.append(contexts)
        self.bindings_enumerated += enumerated
        self.bindings_pruned += full - enumerated
        self.kernel_hits += members
        return violations

    def new_violations(
        self,
        constraint: Constraint,
        ctx: Context,
        scope: Sequence[Context],
        domain: Domain,
        view=None,
        batched: bool = False,
    ) -> List[FrozenSet[Context]]:
        """Violations of ``constraint`` that involve ``ctx``.

        ``scope`` is the pre-existing checking scope (``ctx`` NOT
        included); ``domain`` must present the extended scope
        (``scope`` plus ``ctx``) to the full evaluator.  ``view`` is an
        optional candidate index over exactly ``scope`` (a
        :class:`~repro.constraints.index.CandidateIndex` or
        :class:`~repro.constraints.index.EphemeralScopeIndex`); the
        checker builds one per detect call and shares it across
        constraints so per-constraint ``by_type`` rebuilds disappear.
        ``batched=True`` (the :meth:`ConstraintChecker.detect_batch`
        path) sweeps candidate pools through the vectorized batch
        kernel where available -- the result is identical, only the
        per-binding Python call overhead disappears.
        """
        plan = self.plan_for(constraint)
        if self._enabled and plan.analysis.is_prefix_universal:
            if view is None:
                view = EphemeralScopeIndex(scope)
            return self._fast_path(plan, ctx, view, domain, batched)
        self.interpreter_fallbacks += 1
        return [
            contexts
            for contexts in self._evaluator.violations(constraint, domain)
            if ctx in contexts
        ]

    def _fast_path(
        self,
        plan: ConstraintPlan,
        ctx: Context,
        view,
        domain: Domain,
        batched: bool = False,
    ) -> List[FrozenSet[Context]]:
        analysis = plan.analysis
        assert analysis.vars_types is not None and analysis.body is not None
        vars_types = analysis.vars_types
        ctx_positions = [
            index
            for index, (_, ctx_type) in enumerate(vars_types)
            if ctx_type == ctx.ctx_type
        ]
        if not ctx_positions:
            # ctx's type is not quantified by this constraint.
            return []

        # For each position p that can hold ctx, pin ctx there,
        # restrict earlier pinnable positions to exclude ctx (avoiding
        # duplicate enumeration), and cross the remaining candidate
        # pools.  The view covers scope only (ctx is added below), and
        # join-restricted pools are order-preserving subsequences of
        # the full extents, so surviving bindings -- hence violations
        # -- come out in exactly the unpruned enumeration order.
        body = analysis.body
        kernel = plan.kernel
        var_names = plan.var_names
        seen: Set[FrozenSet[Context]] = set()
        violations: List[FrozenSet[Context]] = []
        enumerated = 0
        full = 0
        earlier: Set[int] = set()
        for position in ctx_positions:
            pools: List[Sequence[Context]] = []
            pool_product = 1
            full_product = 1
            restrict_row = plan.restrict[position] if plan.restrict else None
            for index, (_, ctx_type) in enumerate(vars_types):
                if index == position:
                    pools.append((ctx,))
                    continue
                fields = restrict_row[index] if restrict_row else ()
                if fields:
                    pool: Sequence[Context] = view.candidates(
                        ctx_type,
                        [(f, FIELD_GETTERS[f](ctx)) for f in fields],
                    )
                else:
                    pool = view.extent(ctx_type)
                extent_size = view.extent_size(ctx_type)
                if ctx_type == ctx.ctx_type and index not in earlier:
                    # A later pinnable position: ctx itself is a
                    # candidate there too (it trivially satisfies any
                    # join with itself), appended in arrival order.
                    pool = list(pool)
                    pool.append(ctx)
                    extent_size += 1
                pools.append(pool)
                pool_product *= len(pool)
                full_product *= extent_size
            earlier.add(position)
            enumerated += pool_product
            full += full_product
            if not pool_product:
                continue

            batch_kernel = (
                plan.batch_kernels[position]
                if batched and plan.batch_kernels
                else None
            )
            if batch_kernel is not None:
                # One call sweeps the whole cross product: the nested
                # loops live inside the compiled function, which
                # returns the violating bindings in exactly
                # ``itertools.product`` order (same predicates minus
                # the join-guaranteed equality guards this pinned
                # position elides, same short-circuiting, same
                # escaping exceptions).
                vio_positions = plan.vio_positions
                if vio_positions is not None:
                    # Link shape is statically determinate: the one
                    # violation link binds exactly these positions, so
                    # its context set comes straight off the binding.
                    for binding in batch_kernel.fn(*pools, domain):
                        contexts = frozenset(
                            binding[i] for i in vio_positions
                        )
                        if ctx in contexts and contexts not in seen:
                            seen.add(contexts)
                            violations.append(contexts)
                else:
                    for binding in batch_kernel.fn(*pools, domain):
                        result = self._evaluator.evaluate(
                            body,
                            domain,
                            dict(zip(var_names, binding, strict=True)),
                        )
                        for link in result.vio_links:
                            contexts = link.contexts()
                            if ctx in contexts and contexts not in seen:
                                seen.add(contexts)
                                violations.append(contexts)
            elif kernel is not None:
                fn = kernel.fn
                for binding in itertools.product(*pools):
                    # Truth first (cheap); links only for violations.
                    if fn(*binding, domain):
                        continue
                    result = self._evaluator.evaluate(
                        body, domain, dict(zip(var_names, binding, strict=True))
                    )
                    for link in result.vio_links:
                        contexts = link.contexts()
                        if ctx in contexts and contexts not in seen:
                            seen.add(contexts)
                            violations.append(contexts)
            else:
                for binding in itertools.product(*pools):
                    env = dict(zip(var_names, binding, strict=True))
                    # ``domain`` serves any existentials inside the
                    # body; it is unused for quantifier-free bodies.
                    if self._evaluator.truth(body, domain, env):
                        continue
                    result = self._evaluator.evaluate(body, domain, env)
                    for link in result.vio_links:
                        contexts = link.contexts()
                        if ctx in contexts and contexts not in seen:
                            seen.add(contexts)
                            violations.append(contexts)

        self.bindings_enumerated += enumerated
        self.bindings_pruned += full - enumerated
        if kernel is not None:
            self.kernel_hits += 1
        else:
            self.interpreter_fallbacks += 1
        return violations
