"""Incremental constraint checking (the ICSE'06 [17] substrate).

Re-evaluating every constraint over the whole pool on each context
arrival is wasteful: contexts arrive continuously and most of the pool
did not change.  The incremental engine exploits the structure the
paper's constraints actually have -- a prefix of universal quantifiers
over context types with a quantifier-free body -- to evaluate **only
the new bindings**, i.e. the tuples in which the newly added context
occupies at least one quantified position.

For such *prefix-universal* constraints this is exactly equivalent to
full evaluation filtered down to violations involving the new context
(a property-based test asserts the equivalence on random streams).

The fast path also covers bodies containing existential quantifiers in
*positive* positions (e.g. "every checkout read has an earlier shelf
read"): adding a context is monotone for a positive existential -- it
can newly *satisfy* the body for old bindings but never newly violate
it -- so new violations still only arise from bindings that include
the new context.  Bodies with nested universals or negated
existentials transparently fall back to full evaluation with link
filtering, so the engine is complete.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.context import Context
from .ast import Constraint, Existential, Formula, Universal
from .builtins import FunctionRegistry
from .evaluator import Domain, Evaluator

__all__ = ["PrefixAnalysis", "analyze_prefix", "IncrementalEngine"]


@dataclass(frozen=True)
class PrefixAnalysis:
    """Result of analysing a constraint for the incremental fast path.

    ``vars_types`` is the (variable, context type) list of the
    universal prefix and ``body`` the quantifier-free matrix, or
    ``None`` when the constraint is outside the fragment.
    """

    vars_types: Optional[Tuple[Tuple[str, str], ...]]
    body: Optional[Formula]

    @property
    def is_prefix_universal(self) -> bool:
        return self.vars_types is not None


def _body_is_addition_monotone(formula: Formula, positive: bool = True) -> bool:
    """Whether adding pool contexts can never newly violate ``formula``
    for a fixed binding of its free variables.

    True when the body has no universal quantifiers and every
    existential occurs in a positive position.
    """
    from .ast import And, Implies, Not, Or, Predicate

    if isinstance(formula, Predicate):
        return True
    if isinstance(formula, Universal):
        return False
    if isinstance(formula, Existential):
        return positive and _body_is_addition_monotone(formula.body, positive)
    if isinstance(formula, Not):
        return _body_is_addition_monotone(formula.operand, not positive)
    if isinstance(formula, (And, Or)):
        return _body_is_addition_monotone(
            formula.left, positive
        ) and _body_is_addition_monotone(formula.right, positive)
    if isinstance(formula, Implies):
        return _body_is_addition_monotone(
            formula.left, not positive
        ) and _body_is_addition_monotone(formula.right, positive)
    return False


def analyze_prefix(constraint: Constraint) -> PrefixAnalysis:
    """Extract the universal prefix and addition-monotone body, if any."""
    vars_types: List[Tuple[str, str]] = []
    node: Formula = constraint.formula
    while isinstance(node, Universal):
        vars_types.append((node.var, node.ctx_type))
        node = node.body
    if vars_types and _body_is_addition_monotone(node):
        return PrefixAnalysis(tuple(vars_types), node)
    return PrefixAnalysis(None, None)


class IncrementalEngine:
    """Computes the violations a newly added context introduces.

    Parameters
    ----------
    registry:
        Predicate registry shared with the full evaluator.
    enabled:
        When ``False`` every constraint uses the full-evaluation path;
        used by the equivalence tests and by benchmarks measuring the
        incremental speed-up.
    """

    def __init__(self, registry: FunctionRegistry, enabled: bool = True) -> None:
        self._evaluator = Evaluator(registry)
        self._enabled = enabled
        self._analyses: Dict[str, PrefixAnalysis] = {}

    def _analysis_for(self, constraint: Constraint) -> PrefixAnalysis:
        analysis = self._analyses.get(constraint.name)
        if analysis is None:
            analysis = analyze_prefix(constraint)
            self._analyses[constraint.name] = analysis
        return analysis

    # -- detection -------------------------------------------------------

    def new_violations(
        self,
        constraint: Constraint,
        ctx: Context,
        scope: Sequence[Context],
        domain: Domain,
    ) -> List[FrozenSet[Context]]:
        """Violations of ``constraint`` that involve ``ctx``.

        ``scope`` is the pre-existing checking scope (``ctx`` NOT
        included); ``domain`` must present the extended scope
        (``scope`` plus ``ctx``) to the full evaluator.
        """
        analysis = self._analysis_for(constraint)
        if self._enabled and analysis.is_prefix_universal:
            return self._fast_path(analysis, ctx, scope, domain)
        return [
            contexts
            for contexts in self._evaluator.violations(constraint, domain)
            if ctx in contexts
        ]

    def _fast_path(
        self,
        analysis: PrefixAnalysis,
        ctx: Context,
        scope: Sequence[Context],
        domain: Domain,
    ) -> List[FrozenSet[Context]]:
        assert analysis.vars_types is not None and analysis.body is not None
        by_type: Dict[str, List[Context]] = {}
        for existing in scope:
            by_type.setdefault(existing.ctx_type, []).append(existing)

        extents: List[List[Context]] = []
        ctx_positions: List[int] = []
        for index, (_, ctx_type) in enumerate(analysis.vars_types):
            extent = list(by_type.get(ctx_type, []))
            if ctx.ctx_type == ctx_type:
                extent.append(ctx)
                ctx_positions.append(index)
            extents.append(extent)
        if not ctx_positions:
            # ctx's type is not quantified by this constraint.
            return []

        seen: Set[FrozenSet[Context]] = set()
        violations: List[FrozenSet[Context]] = []
        var_names = [var for var, _ in analysis.vars_types]
        for binding in self._bindings_with_ctx(extents, ctx_positions, ctx):
            env = dict(zip(var_names, binding))
            # ``domain`` serves any existentials inside the body; it is
            # unused for quantifier-free bodies.  Truth is checked
            # first (cheap); links are generated only for violations.
            if self._evaluator.truth(analysis.body, domain, env):
                continue
            result = self._evaluator.evaluate(analysis.body, domain, env)
            for link in result.vio_links:
                contexts = link.contexts()
                if ctx in contexts and contexts not in seen:
                    seen.add(contexts)
                    violations.append(contexts)
        return violations

    @staticmethod
    def _bindings_with_ctx(
        extents: Sequence[Sequence[Context]],
        ctx_positions: Sequence[int],
        ctx: Context,
    ) -> "itertools.chain":
        """Enumerate prefix bindings in which ``ctx`` occurs at least once.

        We take each position ``p`` that can hold ``ctx``, pin ``ctx``
        there, restrict earlier pinnable positions to exclude ``ctx``
        (avoiding duplicate enumeration), and take the cross product of
        the remaining extents.
        """
        products = []
        earlier: Set[int] = set()
        for position in ctx_positions:
            pools: List[Sequence[Context]] = []
            for index, extent in enumerate(extents):
                if index == position:
                    pools.append((ctx,))
                elif index in earlier:
                    pools.append([c for c in extent if c is not ctx])
                else:
                    pools.append(extent)
            products.append(itertools.product(*pools))
            earlier.add(position)
        return itertools.chain(*products)
