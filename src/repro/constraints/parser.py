"""A small textual DSL for consistency constraints.

Grammar (quantifiers bind as far right as possible; ``implies`` is
right-associative and binds weaker than ``or``, which binds weaker
than ``and``; ``not`` binds tightest)::

    formula     := quantified
    quantified  := ("forall" | "exists") IDENT "in" IDENT
                   ("," quantified | ":" quantified)
                 | implication
    implication := disjunction [ "implies" quantified ]
    disjunction := conjunction ( "or" conjunction )*
    conjunction := negation ( "and" negation )*
    negation    := "not" negation | atom
    atom        := "(" formula ")" | predicate
    predicate   := IDENT "(" [ term ("," term)* ] ")"
    term        := IDENT            -- a bound variable
                 | NUMBER           -- int or float literal
                 | STRING           -- single- or double-quoted literal

Example::

    parse_constraint(
        "adjacent-velocity",
        "forall p1 in location, forall p2 in location : "
        "adjacent(p1, p2) implies velocity_le(p1, p2, 1.5)",
    )
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Term,
    Universal,
    Var,
)

__all__ = ["ParseError", "parse_formula", "parse_constraint"]


class ParseError(ValueError):
    """Raised when constraint text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>-?\d+(\.\d+)?([eE][-+]?\d+)?)
  | (?P<STRING>'[^']*'|"[^"]*")
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<COLON>:)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"forall", "exists", "in", "implies", "and", "or", "not"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        pos = match.end()
        if kind == "WS":
            continue
        if kind == "IDENT" and value in _KEYWORDS:
            kind = value.upper()
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing --------------------------------------------------

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at offset {token.pos}, found "
                f"{token.text or 'end of input'!r}"
            )
        return self._advance()

    def _accept(self, kind: str) -> Optional[_Token]:
        if self._peek().kind == kind:
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self._quantified()
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(
                f"trailing input at offset {token.pos}: {token.text!r}"
            )
        return formula

    def _quantified(self) -> Formula:
        token = self._peek()
        if token.kind in ("FORALL", "EXISTS"):
            self._advance()
            var = self._expect("IDENT").text
            self._expect("IN")
            ctx_type = self._expect("IDENT").text
            if self._accept("COMMA"):
                body = self._quantified()
                if not isinstance(body, (Universal, Existential)):
                    raise ParseError(
                        "a comma after a quantifier must introduce "
                        "another quantifier"
                    )
            else:
                self._expect("COLON")
                body = self._quantified()
            cls = Universal if token.kind == "FORALL" else Existential
            return cls(var, ctx_type, body)
        return self._implication()

    def _implication(self) -> Formula:
        left = self._disjunction()
        if self._accept("IMPLIES"):
            right = self._quantified()
            return Implies(left, right)
        return left

    def _disjunction(self) -> Formula:
        formula = self._conjunction()
        while self._accept("OR"):
            formula = Or(formula, self._conjunction())
        return formula

    def _conjunction(self) -> Formula:
        formula = self._negation()
        while self._accept("AND"):
            formula = And(formula, self._negation())
        return formula

    def _negation(self) -> Formula:
        if self._accept("NOT"):
            return Not(self._negation())
        return self._atom()

    def _atom(self) -> Formula:
        if self._accept("LPAREN"):
            formula = self._quantified()
            self._expect("RPAREN")
            return formula
        name = self._expect("IDENT").text
        self._expect("LPAREN")
        args: List[Term] = []
        if self._peek().kind != "RPAREN":
            args.append(self._term())
            while self._accept("COMMA"):
                args.append(self._term())
        self._expect("RPAREN")
        return Predicate(name, tuple(args))

    def _term(self) -> Term:
        token = self._peek()
        if token.kind == "IDENT":
            self._advance()
            return Var(token.text)
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            if re.fullmatch(r"-?\d+", text):
                return Literal(int(text))
            return Literal(float(text))
        if token.kind == "STRING":
            self._advance()
            return Literal(token.text[1:-1])
        raise ParseError(
            f"expected a term at offset {token.pos}, found "
            f"{token.text or 'end of input'!r}"
        )


def parse_formula(text: str) -> Formula:
    """Parse constraint DSL text into a :class:`Formula`."""
    return _Parser(text).parse()


def parse_constraint(name: str, text: str, description: str = "") -> Constraint:
    """Parse DSL text into a named, closed :class:`Constraint`."""
    return Constraint(name=name, formula=parse_formula(text), description=description)
