"""Consistency-constraint language, evaluation and incremental checking."""

from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
    exists,
    forall,
    pred,
)
from .builtins import FunctionRegistry, standard_registry
from .checker import ConstraintChecker
from .compile import CompiledKernel, compile_kernel
from .evaluator import EvalResult, Evaluator
from .format import format_constraint, format_formula, format_term
from .horizon import TIME_BOUNDED_PREDICATES, temporal_horizon
from .incremental import (
    ConstraintPlan,
    IncrementalEngine,
    PrefixAnalysis,
    analyze_prefix,
)
from .index import (
    CandidateIndex,
    EphemeralScopeIndex,
    JoinAnalysis,
    analyze_joins,
    register_equality_predicate,
)
from .links import EMPTY_LINK, Link, cross_join
from .parser import ParseError, parse_constraint, parse_formula

__all__ = [
    "And",
    "Constraint",
    "Existential",
    "Formula",
    "Implies",
    "Literal",
    "Not",
    "Or",
    "Predicate",
    "Universal",
    "Var",
    "exists",
    "forall",
    "pred",
    "FunctionRegistry",
    "standard_registry",
    "ConstraintChecker",
    "CompiledKernel",
    "compile_kernel",
    "EvalResult",
    "Evaluator",
    "format_constraint",
    "format_formula",
    "format_term",
    "TIME_BOUNDED_PREDICATES",
    "temporal_horizon",
    "ConstraintPlan",
    "IncrementalEngine",
    "PrefixAnalysis",
    "analyze_prefix",
    "CandidateIndex",
    "EphemeralScopeIndex",
    "JoinAnalysis",
    "analyze_joins",
    "register_equality_predicate",
    "EMPTY_LINK",
    "Link",
    "cross_join",
    "ParseError",
    "parse_constraint",
    "parse_formula",
]
