"""Consistency-constraint language, evaluation and incremental checking."""

from .ast import (
    And,
    Constraint,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
    exists,
    forall,
    pred,
)
from .builtins import FunctionRegistry, standard_registry
from .checker import ConstraintChecker
from .evaluator import EvalResult, Evaluator
from .format import format_constraint, format_formula, format_term
from .incremental import IncrementalEngine, PrefixAnalysis, analyze_prefix
from .links import EMPTY_LINK, Link, cross_join
from .parser import ParseError, parse_constraint, parse_formula

__all__ = [
    "And",
    "Constraint",
    "Existential",
    "Formula",
    "Implies",
    "Literal",
    "Not",
    "Or",
    "Predicate",
    "Universal",
    "Var",
    "exists",
    "forall",
    "pred",
    "FunctionRegistry",
    "standard_registry",
    "ConstraintChecker",
    "EvalResult",
    "Evaluator",
    "format_constraint",
    "format_formula",
    "format_term",
    "IncrementalEngine",
    "PrefixAnalysis",
    "analyze_prefix",
    "EMPTY_LINK",
    "Link",
    "cross_join",
    "ParseError",
    "parse_constraint",
    "parse_formula",
]
