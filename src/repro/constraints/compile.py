"""Constraint kernel compilation: formulas lowered to Python closures.

The interpreted evaluator (:mod:`repro.constraints.evaluator`) walks
the formula AST for **every candidate binding**: an isinstance ladder
per node, a registry lookup per predicate, an argument list per
application.  On the detection hot path that dispatch dominates the
actual predicate work, so this module lowers a formula once -- at
``add_constraint`` time -- into a single specialized Python function:

* predicate functions are resolved against the registry **once** and
  bound into the kernel's closure namespace;
* variable references become positional parameters, literals become
  pre-bound constants -- no per-binding environment dict;
* ``and`` / ``or`` / ``implies`` / ``not`` flatten into native Python
  boolean expressions with identical left-to-right short-circuiting;
* quantifiers in the body become ``any(...)`` / ``all(...)``
  generator expressions over the domain callable.

A compiled kernel has the signature ``fn(v_0, ..., v_k, domain)``
where ``v_i`` are the contexts bound to the formula's free variables
(in the order given to :func:`compile_kernel`) and ``domain`` maps a
context type to its extent.  Its truth value -- including which
predicates run, in which order, and which exceptions escape -- is
identical to ``Evaluator.truth`` on the same binding; the equivalence
suite in ``tests/constraints/test_kernel_equivalence.py`` machine-
checks this on random formulas and streams.

Out-of-fragment formulas return ``None`` from :func:`compile_kernel`
and keep using the interpreter:

* a predicate name not (yet) registered -- resolution stays lazy so
  late registration and the interpreter's error behaviour survive;
* a quantifier that shadows an in-scope variable name -- the
  interpreter's mutable-environment semantics differ from lexical
  scoping there, and such formulas never occur in practice.

Kernels cache per (formula, registry version): re-registering or
replacing a predicate bumps :attr:`FunctionRegistry.version`, which
invalidates every kernel that may have pre-bound the old function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .ast import (
    And,
    Existential,
    Formula,
    Implies,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from .builtins import FunctionRegistry

__all__ = ["CompiledKernel", "compile_kernel"]


@dataclass(frozen=True)
class CompiledKernel:
    """One formula lowered to a specialized Python function.

    Attributes
    ----------
    fn:
        ``fn(v_0, ..., v_k, domain) -> bool`` with one positional
        parameter per entry of ``var_names`` plus the domain callable.
    var_names:
        The free-variable order the positional parameters follow.
    source:
        The generated function source, for diagnostics and tests.
    registry_version:
        :attr:`FunctionRegistry.version` at compile time; a bumped
        version means pre-bound predicate functions may be stale.
    """

    fn: Callable[..., bool]
    var_names: Tuple[str, ...]
    source: str
    registry_version: int


class _OutOfFragment(Exception):
    """The formula cannot be compiled; callers fall back to the
    interpreter (never propagated out of :func:`compile_kernel`)."""


class _Codegen:
    """Single-pass expression emitter with a pre-bound namespace."""

    def __init__(self, registry: FunctionRegistry) -> None:
        self._registry = registry
        self.namespace: Dict[str, object] = {}
        self._fresh = 0

    def bind(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{self._fresh}"
        self._fresh += 1
        self.namespace[name] = value
        return name

    def emit(self, formula: Formula, scope: Dict[str, str]) -> str:
        if isinstance(formula, Predicate):
            if formula.func not in self._registry:
                raise _OutOfFragment(f"unregistered predicate {formula.func!r}")
            fn = self.bind("f", self._registry.resolve(formula.func))
            args: List[str] = []
            for term in formula.args:
                if isinstance(term, Var):
                    try:
                        args.append(scope[term.name])
                    except KeyError:
                        raise _OutOfFragment(
                            f"unbound variable {term.name!r}"
                        ) from None
                else:
                    args.append(self.bind("c", term.value))
            return f"{fn}({', '.join(args)})"
        if isinstance(formula, Not):
            return f"(not {self.emit(formula.operand, scope)})"
        if isinstance(formula, And):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"({left} and {right})"
        if isinstance(formula, Or):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"({left} or {right})"
        if isinstance(formula, Implies):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"((not {left}) or {right})"
        if isinstance(formula, (Universal, Existential)):
            if formula.var in scope:
                # The interpreter's env-dict semantics and lexical
                # scoping disagree on shadowed names; stay interpreted.
                raise _OutOfFragment(f"shadowed variable {formula.var!r}")
            ctx_type = self.bind("t", formula.ctx_type)
            symbol = self.bind("q", None)
            del self.namespace[symbol]  # loop variable, not a constant
            scope[formula.var] = symbol
            try:
                body = self.emit(formula.body, scope)
            finally:
                del scope[formula.var]
            reducer = "all" if isinstance(formula, Universal) else "any"
            return f"{reducer}({body} for {symbol} in _dom({ctx_type}))"
        raise _OutOfFragment(f"unsupported node {type(formula).__name__}")


def compile_kernel(
    formula: Formula,
    var_names: Sequence[str],
    registry: FunctionRegistry,
) -> Optional[CompiledKernel]:
    """Lower ``formula`` into a kernel over ``var_names``, or ``None``.

    ``var_names`` fixes the positional parameter order for the
    formula's free variables (closed formulas pass ``()``).  Returns
    ``None`` for out-of-fragment formulas, which must keep using the
    interpreted evaluator.
    """
    version = registry.version
    gen = _Codegen(registry)
    params = [gen.bind("q", None) for _ in var_names]
    for symbol in params:
        del gen.namespace[symbol]  # parameters, not constants
    scope = dict(zip(var_names, params, strict=True))
    try:
        expr = gen.emit(formula, scope)
    except _OutOfFragment:
        return None
    signature = "".join(f"{p}, " for p in params) + "_dom"
    source = f"def _kernel({signature}):\n    return bool({expr})\n"
    exec(compile(source, "<constraint-kernel>", "exec"), gen.namespace)
    return CompiledKernel(
        fn=gen.namespace["_kernel"],
        var_names=tuple(var_names),
        source=source,
        registry_version=version,
    )
