"""Constraint kernel compilation: formulas lowered to Python closures.

The interpreted evaluator (:mod:`repro.constraints.evaluator`) walks
the formula AST for **every candidate binding**: an isinstance ladder
per node, a registry lookup per predicate, an argument list per
application.  On the detection hot path that dispatch dominates the
actual predicate work, so this module lowers a formula once -- at
``add_constraint`` time -- into a single specialized Python function:

* predicate functions are resolved against the registry **once** and
  bound into the kernel's closure namespace;
* variable references become positional parameters, literals become
  pre-bound constants -- no per-binding environment dict;
* ``and`` / ``or`` / ``implies`` / ``not`` flatten into native Python
  boolean expressions with identical left-to-right short-circuiting;
* quantifiers in the body become ``any(...)`` / ``all(...)``
  generator expressions over the domain callable.

A compiled kernel has the signature ``fn(v_0, ..., v_k, domain)``
where ``v_i`` are the contexts bound to the formula's free variables
(in the order given to :func:`compile_kernel`) and ``domain`` maps a
context type to its extent.  Its truth value -- including which
predicates run, in which order, and which exceptions escape -- is
identical to ``Evaluator.truth`` on the same binding; the equivalence
suite in ``tests/constraints/test_kernel_equivalence.py`` machine-
checks this on random formulas and streams.

Out-of-fragment formulas return ``None`` from :func:`compile_kernel`
and keep using the interpreter:

* a predicate name not (yet) registered -- resolution stays lazy so
  late registration and the interpreter's error behaviour survive;
* a quantifier that shadows an in-scope variable name -- the
  interpreter's mutable-environment semantics differ from lexical
  scoping there, and such formulas never occur in practice.

Kernels cache per (formula, registry version): re-registering or
replacing a predicate bumps :attr:`FunctionRegistry.version`, which
invalidates every kernel that may have pre-bound the old function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .ast import (
    And,
    Existential,
    Formula,
    Implies,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from .builtins import FunctionRegistry

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "BatchKernel",
    "compile_batch_kernel",
    "GroupKernel",
    "compile_group_kernel",
]


@dataclass(frozen=True)
class CompiledKernel:
    """One formula lowered to a specialized Python function.

    Attributes
    ----------
    fn:
        ``fn(v_0, ..., v_k, domain) -> bool`` with one positional
        parameter per entry of ``var_names`` plus the domain callable.
    var_names:
        The free-variable order the positional parameters follow.
    source:
        The generated function source, for diagnostics and tests.
    registry_version:
        :attr:`FunctionRegistry.version` at compile time; a bumped
        version means pre-bound predicate functions may be stale.
    """

    fn: Callable[..., bool]
    var_names: Tuple[str, ...]
    source: str
    registry_version: int


class _OutOfFragment(Exception):
    """The formula cannot be compiled; callers fall back to the
    interpreter (never propagated out of :func:`compile_kernel`)."""


class _Codegen:
    """Single-pass expression emitter with a pre-bound namespace.

    ``elide`` holds ``(func, frozenset({a, b}))`` pairs naming binary
    predicate applications over in-scope variables that the caller has
    *proven* true for every binding the emitted code will see (the
    batched path passes equality guards whose positions are already
    join-restricted to agree); they are emitted as the constant
    ``True`` and fold away under short-circuiting.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        elide: frozenset = frozenset(),
        intern: bool = False,
    ) -> None:
        self._registry = registry
        self._elide = elide
        self._intern = intern
        self._interned: Dict[object, str] = {}
        self.namespace: Dict[str, object] = {}
        self._fresh = 0

    def bind(self, prefix: str, value: object) -> str:
        if self._intern and prefix in ("f", "c", "t"):
            # Same resolved function / same literal value -> same
            # symbol, so identical subexpressions emit identical
            # source strings (the group compiler's sharing test).
            # Loop-variable placeholders ("q" / "p") stay fresh.
            if prefix == "f":
                key = ("f", id(value))
            else:
                try:
                    key = (prefix, type(value), value)
                    hash(key)
                except TypeError:
                    key = None
            if key is not None:
                symbol = self._interned.get(key)
                if symbol is not None:
                    return symbol
                symbol = self._bind_fresh(prefix, value)
                self._interned[key] = symbol
                return symbol
        return self._bind_fresh(prefix, value)

    def _bind_fresh(self, prefix: str, value: object) -> str:
        name = f"_{prefix}{self._fresh}"
        self._fresh += 1
        self.namespace[name] = value
        return name

    def emit(self, formula: Formula, scope: Dict[str, str]) -> str:
        if isinstance(formula, Predicate):
            if self._elide and len(formula.args) == 2:
                a, b = formula.args
                if (
                    isinstance(a, Var)
                    and isinstance(b, Var)
                    and a.name in scope
                    and b.name in scope
                    and (formula.func, frozenset((a.name, b.name)))
                    in self._elide
                ):
                    return "True"
            if formula.func not in self._registry:
                raise _OutOfFragment(f"unregistered predicate {formula.func!r}")
            fn = self.bind("f", self._registry.resolve(formula.func))
            args: List[str] = []
            for term in formula.args:
                if isinstance(term, Var):
                    try:
                        args.append(scope[term.name])
                    except KeyError:
                        raise _OutOfFragment(
                            f"unbound variable {term.name!r}"
                        ) from None
                else:
                    args.append(self.bind("c", term.value))
            return f"{fn}({', '.join(args)})"
        if isinstance(formula, Not):
            return f"(not {self.emit(formula.operand, scope)})"
        if isinstance(formula, And):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"({left} and {right})"
        if isinstance(formula, Or):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"({left} or {right})"
        if isinstance(formula, Implies):
            left = self.emit(formula.left, scope)
            right = self.emit(formula.right, scope)
            return f"((not {left}) or {right})"
        if isinstance(formula, (Universal, Existential)):
            if formula.var in scope:
                # The interpreter's env-dict semantics and lexical
                # scoping disagree on shadowed names; stay interpreted.
                raise _OutOfFragment(f"shadowed variable {formula.var!r}")
            ctx_type = self.bind("t", formula.ctx_type)
            symbol = self.bind("q", None)
            del self.namespace[symbol]  # loop variable, not a constant
            scope[formula.var] = symbol
            try:
                body = self.emit(formula.body, scope)
            finally:
                del scope[formula.var]
            reducer = "all" if isinstance(formula, Universal) else "any"
            return f"{reducer}({body} for {symbol} in _dom({ctx_type}))"
        raise _OutOfFragment(f"unsupported node {type(formula).__name__}")


def compile_kernel(
    formula: Formula,
    var_names: Sequence[str],
    registry: FunctionRegistry,
) -> Optional[CompiledKernel]:
    """Lower ``formula`` into a kernel over ``var_names``, or ``None``.

    ``var_names`` fixes the positional parameter order for the
    formula's free variables (closed formulas pass ``()``).  Returns
    ``None`` for out-of-fragment formulas, which must keep using the
    interpreted evaluator.
    """
    version = registry.version
    gen = _Codegen(registry)
    params = [gen.bind("q", None) for _ in var_names]
    for symbol in params:
        del gen.namespace[symbol]  # parameters, not constants
    scope = dict(zip(var_names, params, strict=True))
    try:
        expr = gen.emit(formula, scope)
    except _OutOfFragment:
        return None
    signature = "".join(f"{p}, " for p in params) + "_dom"
    source = f"def _kernel({signature}):\n    return bool({expr})\n"
    exec(compile(source, "<constraint-kernel>", "exec"), gen.namespace)
    return CompiledKernel(
        fn=gen.namespace["_kernel"],
        var_names=tuple(var_names),
        source=source,
        registry_version=version,
    )


@dataclass(frozen=True)
class BatchKernel:
    """One formula lowered to a *vectorized* enumeration function.

    Where :class:`CompiledKernel` answers one binding per Python call,
    a batch kernel takes one candidate **pool per free variable** and
    sweeps the full cross product in a single call, returning the
    violating bindings (as tuples, in :func:`itertools.product`
    order).  The per-binding call overhead -- argument packing, frame
    setup, the ``bool()`` wrapper -- moves out of the inner loop, which
    is the bulk of the remaining detection cost once predicates are
    pre-resolved.

    Attributes
    ----------
    fn:
        ``fn(pool_0, ..., pool_k, domain) -> list[tuple[Context, ...]]``
        with one positional pool per entry of ``var_names`` plus the
        domain callable (serving any existentials inside the body).
    var_names:
        The free-variable order the pool parameters (and the entries
        of each returned binding tuple) follow.
    source:
        The generated function source, for diagnostics and tests.
    registry_version:
        :attr:`FunctionRegistry.version` at compile time.
    """

    fn: Callable[..., List[tuple]]
    var_names: Tuple[str, ...]
    source: str
    registry_version: int


def compile_batch_kernel(
    formula: Formula,
    var_names: Sequence[str],
    registry: FunctionRegistry,
    elide: frozenset = frozenset(),
) -> Optional[BatchKernel]:
    """Lower ``formula`` into a batch kernel over ``var_names``.

    The generated function runs the body expression inside nested
    ``for`` loops (one per free variable, outermost first), so each
    binding sees exactly the predicate calls, evaluation order, and
    short-circuiting of the per-binding kernel -- any exception escapes
    at the same binding it would have under a sequential sweep.
    Returns ``None`` for out-of-fragment formulas and for closed
    formulas (an empty ``var_names`` has nothing to batch over).

    ``elide`` -- ``(func, frozenset({a, b}))`` pairs -- names equality
    guards the caller proves true for every binding it will pass
    (because the candidate pools are join-restricted on the guarded
    field); they compile to ``True``, sparing one predicate call per
    binding without changing any verdict.
    """
    if not var_names:
        return None
    version = registry.version
    gen = _Codegen(registry, elide)
    loop_vars = [gen.bind("q", None) for _ in var_names]
    pools = [gen.bind("p", None) for _ in var_names]
    for symbol in loop_vars + pools:
        del gen.namespace[symbol]  # loop variables / parameters
    scope = dict(zip(var_names, loop_vars, strict=True))
    try:
        expr = gen.emit(formula, scope)
    except _OutOfFragment:
        return None
    signature = "".join(f"{p}, " for p in pools) + "_dom"
    lines = [f"def _batch_kernel({signature}):"]
    lines.append("    _vio = []")
    lines.append("    _emit = _vio.append")
    indent = "    "
    for loop_var, pool in zip(loop_vars, pools, strict=True):
        lines.append(f"{indent}for {loop_var} in {pool}:")
        indent += "    "
    lines.append(f"{indent}if not ({expr}):")
    lines.append(f"{indent}    _emit(({', '.join(loop_vars)},))")
    lines.append("    return _vio")
    source = "\n".join(lines) + "\n"
    exec(compile(source, "<constraint-batch-kernel>", "exec"), gen.namespace)
    return BatchKernel(
        fn=gen.namespace["_batch_kernel"],
        var_names=tuple(var_names),
        source=source,
        registry_version=version,
    )


def _conjuncts(formula: Formula) -> List[Formula]:
    """Flatten an ``And`` chain into evaluation order."""
    if isinstance(formula, And):
        return _conjuncts(formula.left) + _conjuncts(formula.right)
    return [formula]


@dataclass(frozen=True)
class GroupKernel:
    """Several constraint bodies fused into one pool sweep.

    Constraints routinely quantify over the same candidate pools with
    overlapping guards (the two call-forwarding velocity rules share
    their whole join structure and most of their antecedent); sweeping
    each body separately re-iterates the identical cross product and
    recomputes the identical guard prefix.  A group kernel runs all
    bodies inside **one** nested loop and hoists the longest common
    antecedent prefix (matched on emitted source, with functions and
    literals interned so identical subexpressions collide) into a
    single shared computation: when the shared guard fails, every
    fused implication is vacuously true and no further predicate runs
    -- exactly each body's own short-circuit, paid once instead of
    once per body.

    Each body's verdicts are byte-identical to its solo
    :class:`BatchKernel`; only *how often* shared guard predicates are
    called changes.

    Attributes
    ----------
    fn:
        ``fn(pool_0, ..., pool_k, domain) -> tuple[list[tuple], ...]``
        returning one violating-binding list per fused body, each in
        :func:`itertools.product` order.
    size:
        Number of fused bodies (length of the returned tuple).
    source:
        The generated function source, for diagnostics and tests.
    registry_version:
        :attr:`FunctionRegistry.version` at compile time.
    """

    fn: Callable[..., Tuple[List[tuple], ...]]
    size: int
    source: str
    registry_version: int


def compile_group_kernel(
    bodies: Sequence[Formula],
    var_names_list: Sequence[Tuple[str, ...]],
    registry: FunctionRegistry,
    elides: Sequence[frozenset] = (),
) -> Optional[GroupKernel]:
    """Fuse ``bodies`` (one per constraint) into one batch sweep.

    All bodies must quantify over the same positional pool shapes
    (``var_names_list`` entries have equal length; spellings may
    differ -- each body is emitted against its own name -> loop-var
    scope).  ``elides[i]`` is body ``i``'s guard-elision set (see
    :func:`compile_batch_kernel`).  Returns ``None`` when any body is
    out of fragment or the group is degenerate.
    """
    if len(bodies) < 2 or len(var_names_list) != len(bodies):
        return None
    arity = len(var_names_list[0])
    if arity == 0 or any(len(names) != arity for names in var_names_list):
        return None
    if not elides:
        elides = [frozenset()] * len(bodies)
    version = registry.version
    gen = _Codegen(registry, intern=True)
    loop_vars = [gen._bind_fresh("q", None) for _ in range(arity)]
    pools = [gen._bind_fresh("p", None) for _ in range(arity)]
    for symbol in loop_vars + pools:
        del gen.namespace[symbol]  # loop variables / parameters
    # Emit every body: implications decompose into (antecedent
    # conjunct strings, consequent string) so common guard prefixes
    # can be hoisted; anything else stays a single opaque expression.
    emitted: List[Tuple[Optional[List[str]], str]] = []
    try:
        for body, names, elide in zip(
            bodies, var_names_list, elides, strict=True
        ):
            gen._elide = elide
            scope = dict(zip(names, loop_vars, strict=True))
            if isinstance(body, Implies):
                conjs = [
                    expr
                    for expr in (
                        gen.emit(conj, scope)
                        for conj in _conjuncts(body.left)
                    )
                    if expr != "True"  # elided guards are and-identity
                ]
                emitted.append((conjs, gen.emit(body.right, scope)))
            else:
                emitted.append((None, gen.emit(body, scope)))
    except _OutOfFragment:
        return None
    # Longest antecedent prefix shared by *all* bodies (source-string
    # equality is sound because functions and literals are interned).
    prefix: List[str] = []
    if all(conjs is not None for conjs, _ in emitted):
        candidate = emitted[0][0] or []
        depth = 0
        while depth < len(candidate) and all(
            depth < len(conjs) and conjs[depth] == candidate[depth]
            for conjs, _ in emitted
        ):
            depth += 1
        prefix = candidate[:depth]

    def body_expr(conjs: Optional[List[str]], cons: str) -> str:
        if conjs is None:
            return cons
        rest = conjs[len(prefix):]
        if not rest:
            return cons
        return f"(not ({' and '.join(rest)})) or {cons}"

    signature = "".join(f"{p}, " for p in pools) + "_dom"
    lines = [f"def _group_kernel({signature}):"]
    emits = []
    for k in range(len(bodies)):
        lines.append(f"    _v{k} = []")
        lines.append(f"    _e{k} = _v{k}.append")
        emits.append(f"_e{k}")
    indent = "    "
    for loop_var, pool in zip(loop_vars, pools, strict=True):
        lines.append(f"{indent}for {loop_var} in {pool}:")
        indent += "    "
    if prefix:
        lines.append(f"{indent}if {' and '.join(prefix)}:")
        indent += "    "
    binding = f"({', '.join(loop_vars)},)"
    for k, (conjs, cons) in enumerate(emitted):
        lines.append(f"{indent}if not ({body_expr(conjs, cons)}):")
        lines.append(f"{indent}    {emits[k]}({binding})")
    returns = ", ".join(f"_v{k}" for k in range(len(bodies)))
    lines.append(f"    return ({returns},)")
    source = "\n".join(lines) + "\n"
    exec(compile(source, "<constraint-group-kernel>", "exec"), gen.namespace)
    return GroupKernel(
        fn=gen.namespace["_group_kernel"],
        size=len(bodies),
        source=source,
        registry_version=version,
    )
