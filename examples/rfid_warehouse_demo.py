#!/usr/bin/env python3
"""RFID data anomalies demo: cleaning a dirty warehouse read stream.

Tagged items flow dock -> staging -> shelves -> checkout while zone
readers produce cross reads, ghost reads and duplicates at a
controlled error rate.  The demo contrasts the raw stream with what
each resolution strategy delivers to the inventory application, and
shows the per-item zone trails after cleaning.

Run:
    python examples/rfid_warehouse_demo.py [err_rate] [items]
"""

import sys
from collections import defaultdict

from repro import Middleware, RFIDAnomaliesApp, SituationEngine, make_strategy


def trail(contexts):
    """Compress a read sequence into a deduplicated zone trail."""
    zones = []
    for ctx in sorted(contexts, key=lambda c: c.timestamp):
        if not zones or zones[-1] != ctx.value:
            zones.append(str(ctx.value))
    return " > ".join(zones)


def main() -> None:
    err_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    items = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    app = RFIDAnomaliesApp()
    contexts = app.generate_workload(err_rate, seed=7, items=items)
    print(__doc__)
    print(
        f"workload: {len(contexts)} reads over {items} items, "
        f"{sum(c.corrupted for c in contexts)} corrupted\n"
    )

    print("strategy comparison:")
    for name in ("opt-r", "drop-bad", "drop-latest", "drop-all"):
        middleware = Middleware(
            app.build_checker(), make_strategy(name), use_window=20
        )
        engine = SituationEngine(app.build_situations())
        middleware.plug_in(engine)
        middleware.receive_all(contexts)
        log = middleware.resolution.log
        good = sum(1 for c in log.delivered if not c.corrupted)
        bad = len(log.delivered) - good
        print(
            f"  {name:>12}: delivered {good:3d} clean + {bad:3d} dirty reads, "
            f"discarded {len(log.discarded):3d} "
            f"(precision {log.removal_precision():.0%}), "
            f"checkouts seen {engine.activations.get('rf-checked-out', 0)}"
        )
    print()

    # Show item trails under drop-bad vs the raw stream.
    middleware = Middleware(
        app.build_checker(), make_strategy("drop-bad"), use_window=20
    )
    middleware.receive_all(contexts)
    delivered = defaultdict(list)
    for ctx in middleware.resolution.log.delivered:
        delivered[ctx.subject].append(ctx)
    raw = defaultdict(list)
    for ctx in contexts:
        raw[ctx.subject].append(ctx)

    print("item trails (raw stream vs after drop-bad cleaning):")
    for tag in sorted(raw)[:4]:
        print(f"  {tag}")
        print(f"    raw    : {trail(raw[tag])}")
        print(f"    cleaned: {trail(delivered[tag])}")


if __name__ == "__main__":
    main()
