#!/usr/bin/env python3
"""Landmarc location tracking + drop-bad cleaning (Section 5.2).

Simulates the paper's case study: a walker is tracked by the LANDMARC
indoor localization algorithm over a reference-tag grid; multipath
occasionally garbles a measurement.  Drop-bad resolution filters the
estimate stream, improving tracking accuracy, and the heuristic-rule
monitor reports how often Rules 1 / 2 / 2' held in practice.

Run:
    python examples/landmarc_tracking.py [seed]
"""

import sys

from repro import format_case_study, run_case_study
from repro.experiments.case_study import CaseStudyConfig
from repro.sensing.landmarc import (
    LandmarcEstimator,
    corner_readers,
    grid_reference_tags,
)
from repro.sensing.rf import PathLossModel


def show_estimator_basics() -> None:
    """A tiny standalone LANDMARC demonstration."""
    estimator = LandmarcEstimator(
        corner_readers(0.0, 0.0, 20.0, 20.0),
        grid_reference_tags(0.0, 0.0, 20.0, 20.0, spacing=4.0),
        PathLossModel(shadow_sigma=0.0),
        k=4,
    )
    print("LANDMARC sanity check (noiseless RF):")
    for true_position in [(5.0, 5.0), (12.0, 7.0), (17.0, 16.0)]:
        estimate = estimator.estimate(true_position)
        print(
            f"  tag at {true_position} -> estimated "
            f"({estimate[0]:5.2f}, {estimate[1]:5.2f}), "
            f"error {estimator.error(true_position):4.2f} m"
        )
    print()


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    print(__doc__)
    show_estimator_basics()

    config = CaseStudyConfig()
    result = run_case_study(seed=seed, config=config)
    print(f"case study over {result.contexts_total} tracked positions "
          f"({result.contexts_corrupted} corrupted by multipath):\n")
    print(format_case_study(result))
    print()
    print(
        f"cleaning reduced mean tracking error by "
        f"{result.accuracy_improvement:.0%} "
        f"({result.mean_error_raw:.2f} m -> "
        f"{result.mean_error_delivered:.2f} m)"
    )


if __name__ == "__main__":
    main()
