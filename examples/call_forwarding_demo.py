#!/usr/bin/env python3
"""Call Forwarding demo: the Active-Badge application end to end.

Peter and Alice walk around an office floor; badge sensors sight them
(with a controlled 25% error rate) and a coordinate tracker follows
Peter.  The middleware checks five consistency constraints, the
drop-bad strategy cleans the stream, and the Call Forwarding
application adapts the forwarding target as Peter moves.

Run:
    python examples/call_forwarding_demo.py [err_rate] [seed]
"""

import sys

from repro import (
    CallForwardingApp,
    ForwardingController,
    Middleware,
    SituationEngine,
    make_strategy,
)


def main() -> None:
    err_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    app = CallForwardingApp()
    contexts = app.generate_workload(err_rate, seed=seed, duration=300.0)
    print(__doc__)
    print(
        f"workload: {len(contexts)} contexts, "
        f"{sum(c.corrupted for c in contexts)} corrupted "
        f"(err_rate={err_rate:.0%}, seed={seed})\n"
    )

    middleware = Middleware(
        app.build_checker(), make_strategy("drop-bad"), use_window=10
    )
    engine = SituationEngine(app.build_situations())
    middleware.plug_in(engine)

    controller = ForwardingController(subject="peter")
    middleware.subscriptions.subscribe(
        "call-forwarding", controller.on_context, ctx_type="badge"
    )

    middleware.receive_all(contexts)

    log = middleware.resolution.log
    print("resolution summary (drop-bad):")
    print(f"  inconsistencies detected : {len(log.detected)}")
    print(f"  contexts delivered       : {len(log.delivered)}")
    print(f"  contexts discarded       : {len(log.discarded)}")
    print(f"  removal precision        : {log.removal_precision():.1%}")
    print(f"  expected-context survival: {log.survival_rate():.1%}")
    print()

    print("situations activated:")
    for situation in app.build_situations():
        count = engine.activations.get(situation.name, 0)
        print(f"  {situation.name:<18} {count:4d}  ({situation.description})")
    print()

    print(f"forwarding decisions ({len(controller.decisions)} changes, "
          f"final target: {controller.target}):")
    for timestamp, target in controller.decisions[:12]:
        print(f"  t={timestamp:7.1f}s -> {target}")
    if len(controller.decisions) > 12:
        print(f"  ... and {len(controller.decisions) - 12} more")


if __name__ == "__main__":
    main()
