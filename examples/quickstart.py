#!/usr/bin/env python3
"""Quickstart: detect and resolve context inconsistencies.

Reconstructs the paper's running example (Section 2, Figure 1): Peter
walks along a corridor, the location tracker produces five contexts
d1..d5 of which d3 is badly off, and the velocity consistency
constraint exposes it.  We then let each resolution strategy handle
the stream and compare what survives.

Run:
    python examples/quickstart.py
"""

from repro import ConstraintChecker, Middleware, make_strategy, parse_constraint
from repro.core.context import ContextFactory

# -- 1. Describe what "consistent" means ------------------------------------
#
# Peter's walking velocity, estimated from any two of his tracked
# locations taken at most 2.5 periods apart, must stay below 150% of
# his average velocity (1 m/s here) -- the paper's constraint.
VELOCITY = parse_constraint(
    "velocity-bound",
    "forall l1 in location, forall l2 in location : "
    "(same_subject(l1, l2) and before(l1, l2) "
    "and within_time(l1, l2, 2.5)) "
    "implies velocity_le(l1, l2, 1.5)",
    description="Peter cannot move faster than 150% of his usual pace.",
)

# -- 2. Produce the five tracked locations of Figure 1 ----------------------
factory = ContextFactory()
PATH = [(0.0, 0.0), (1.0, 0.0), (2.0, 3.0), (3.0, 0.0), (4.0, 0.0)]
contexts = [
    factory.make(
        "location",
        "peter",
        position,
        timestamp=float(i),
        corrupted=(i == 2),  # ground truth: d3 is the bad estimate
        ctx_id=f"d{i + 1}",
    )
    for i, position in enumerate(PATH)
]


def run(strategy_name: str) -> None:
    """Play the stream through the middleware under one strategy."""
    middleware = Middleware(
        ConstraintChecker([VELOCITY]),
        make_strategy(strategy_name),
        use_window=5,  # applications use contexts 5 arrivals later
    )
    middleware.receive_all(contexts)
    log = middleware.resolution.log
    delivered = ", ".join(sorted(c.ctx_id for c in log.delivered))
    discarded = ", ".join(sorted(c.ctx_id for c in log.discarded)) or "none"
    verdict = (
        "correct"
        if {c.ctx_id for c in log.discarded} == {"d3"}
        else "WRONG"
    )
    print(f"{strategy_name:>14}: delivered [{delivered}] "
          f"discarded [{discarded}]  -> {verdict}")


def main() -> None:
    print(__doc__)
    print("Detected inconsistencies (no resolution):")
    checker = ConstraintChecker([VELOCITY])
    for inconsistency in checker.check_all(contexts, now=5.0):
        ids = ", ".join(sorted(c.ctx_id for c in inconsistency.contexts))
        print(f"  {{{ids}}} violates {inconsistency.constraint}")
    print()
    print("Strategy outcomes (d3 is the corrupted context):")
    for name in ("opt-r", "drop-bad", "drop-latest", "drop-all"):
        run(name)


if __name__ == "__main__":
    main()
