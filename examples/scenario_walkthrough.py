#!/usr/bin/env python3
"""Walk through the paper's Figures 1-5 scenario narrative.

Reconstructs scenarios A and B (five tracked locations, d3 corrupted),
shows the tracked inconsistency sets and count values under the basic
and refined velocity constraints, and replays every strategy --
reproducing each claim of the paper's Sections 2 and 3.

Run:
    python examples/scenario_walkthrough.py
"""

from repro.experiments.report import format_scenarios, format_table
from repro.experiments.scenarios import (
    SCENARIOS,
    count_values,
    replay_strategy,
    scenario_contexts,
    tracked_inconsistencies,
)


def show_scenario(scenario: str) -> None:
    contexts = scenario_contexts(scenario)
    print(f"Scenario {scenario} -- tracked locations:")
    for ctx in contexts:
        marker = "  <-- corrupted" if ctx.corrupted else ""
        print(f"  {ctx.ctx_id}: {ctx.value}{marker}")
    for refined in (False, True):
        label = "refined (adjacent + one-separated)" if refined else "basic (adjacent pairs)"
        delta = sorted(
            ",".join(sorted(members))
            for members in tracked_inconsistencies(scenario, refined)
        )
        counts = count_values(scenario, refined)
        print(f"  {label}:")
        print(f"    Δ = {{ {'; '.join(delta) or '∅'} }}")
        print(
            "    counts: "
            + "  ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
    print()


def main() -> None:
    print(__doc__)
    for scenario in SCENARIOS:
        show_scenario(scenario)

    outcomes = [
        replay_strategy(strategy, scenario, refined=refined)
        for strategy in ("opt-r", "drop-bad", "drop-latest", "drop-all")
        for scenario in SCENARIOS
        for refined in (False, True)
    ]
    print("Strategy outcomes (success = exactly d3 discarded):")
    print(format_scenarios(outcomes))
    print()
    print("Paper claims reproduced:")
    print("  - Figure 2: drop-latest correct on A, blames d4 on B")
    print("  - Figure 3: drop-all loses correct contexts in both")
    print("  - Figure 4: counts d3=2 (A basic); tie d3=d4=1 (B basic)")
    print("  - Figure 5: counts d3=4 (A refined), d3=2 (B refined)")
    print("  - Section 3: drop-bad discards exactly d3 everywhere")


if __name__ == "__main__":
    main()
