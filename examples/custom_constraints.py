#!/usr/bin/env python3
"""Extending the library: your own contexts, predicates and constraints.

Shows the full extension surface a downstream user touches:

1. define a new context type (meeting-room booking records);
2. register custom predicates against the standard registry;
3. write constraints in the DSL relating bookings to badge sightings;
4. plug a user-specified resolution policy into the middleware.

Run:
    python examples/custom_constraints.py
"""

from repro import (
    ConstraintChecker,
    Middleware,
    UserSpecifiedStrategy,
    parse_constraint,
    standard_registry,
)
from repro.core.context import ContextFactory
from repro.core.user_specified import source_trust_policy

# -- 1. contexts: bookings say who SHOULD be in the meeting room -----------
factory = ContextFactory()
booking = factory.make(
    "booking",
    "peter",
    {"room": "meeting", "from": 10.0, "until": 40.0},
    timestamp=0.0,
    source="calendar",
)

# Badge sightings say where Peter actually is.  The calendar is
# trustworthy; the old corridor sensor is flaky.
sightings = [
    factory.make("badge", "peter", "meeting", 12.0, source="room-sensor"),
    factory.make(
        "badge", "peter", "corridor", 14.0, source="flaky-sensor",
        corrupted=True,
    ),
    factory.make("badge", "peter", "meeting", 16.0, source="room-sensor"),
]

# -- 2. custom predicates ---------------------------------------------------
registry = standard_registry()


@registry.register("booked_room")
def booked_room(booking_ctx, badge_ctx):
    """The badge sighting matches the booked room."""
    return badge_ctx.value == booking_ctx.value["room"]


@registry.register("during_booking")
def during_booking(booking_ctx, badge_ctx):
    window = booking_ctx.value
    return window["from"] <= badge_ctx.timestamp <= window["until"]


# -- 3. a cross-type consistency constraint in the DSL ----------------------
ATTENDANCE = parse_constraint(
    "booked-attendance",
    "forall bk in booking, forall b in badge : "
    "(same_subject(bk, b) and during_booking(bk, b)) "
    "implies booked_room(bk, b)",
    description="During a booking, sightings must match the booked room.",
)

# -- 4. resolve with a user-specified source-trust policy --------------------


def main() -> None:
    print(__doc__)
    strategy = UserSpecifiedStrategy(
        preference=source_trust_policy(
            {"calendar": 1.0, "room-sensor": 0.8, "flaky-sensor": 0.1}
        )
    )
    middleware = Middleware(
        ConstraintChecker([ATTENDANCE], registry=registry),
        strategy,
        use_window=2,
    )
    middleware.receive_all([booking] + sightings)

    log = middleware.resolution.log
    print("detected inconsistencies:")
    for inconsistency in log.detected:
        ids = ", ".join(sorted(c.ctx_id for c in inconsistency.contexts))
        print(f"  {{{ids}}} violates {inconsistency.constraint}")
    print()
    print("discarded by the source-trust policy:")
    for ctx in log.discarded:
        print(f"  {ctx.ctx_id} from {ctx.source!r} "
              f"({'corrupted' if ctx.corrupted else 'expected'})")
    print()
    print(f"delivered {len(log.delivered)} contexts; "
          f"removal precision {log.removal_precision():.0%}")


if __name__ == "__main__":
    main()
