#!/usr/bin/env python3
"""Smart phone demo: the paper's motivating example, end to end.

"A smart phone would vibrate rather than beep in a concert hall ...
but would roar loudly in a football match."  The owner's day produces
venue, ambient-noise and calendar contexts with a controlled error
rate; the drop-bad strategy cleans them; the phone adapts its ringer
profile from what survives.

Run:
    python examples/smart_phone_demo.py [err_rate] [seed]
"""

import sys

from repro import Middleware, SituationEngine, make_strategy
from repro.apps.smart_phone import RingerController, SmartPhoneApp


def main() -> None:
    err_rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 11

    app = SmartPhoneApp()
    contexts = app.generate_workload(err_rate, seed=seed, days=2)
    print(__doc__)
    print(
        f"workload: {len(contexts)} contexts over 2 days, "
        f"{sum(c.corrupted for c in contexts)} corrupted "
        f"(err_rate={err_rate:.0%})\n"
    )

    for name in ("drop-bad", "drop-latest"):
        middleware = Middleware(
            app.build_checker(), make_strategy(name), use_window=8
        )
        engine = SituationEngine(app.build_situations())
        middleware.plug_in(engine)
        controller = RingerController(owner="peter")
        middleware.subscriptions.subscribe(
            "ringer", controller.on_context, ctx_type="venue"
        )
        middleware.receive_all(contexts)

        log = middleware.resolution.log
        spurious = sum(
            1
            for _, profile in controller.changes
            if profile in ("vibrate", "loud")
        )
        print(f"{name}:")
        print(
            f"  detected {len(log.detected)} inconsistencies, discarded "
            f"{len(log.discarded)} contexts "
            f"(precision {log.removal_precision():.0%}, "
            f"survival {log.survival_rate():.0%})"
        )
        print(
            f"  situations: "
            + ", ".join(
                f"{s.name}={engine.activations.get(s.name, 0)}"
                for s in app.build_situations()
            )
        )
        print(f"  ringer profile changed {len(controller.changes)} times")
        print()

    # Show the actual profile timeline under drop-bad.
    middleware = Middleware(
        app.build_checker(), make_strategy("drop-bad"), use_window=8
    )
    controller = RingerController(owner="peter")
    middleware.subscriptions.subscribe(
        "ringer", controller.on_context, ctx_type="venue"
    )
    middleware.receive_all(contexts)
    print("ringer timeline (drop-bad):")
    for timestamp, profile in controller.changes[:14]:
        print(f"  t={timestamp:7.1f}s -> {profile}")
    if len(controller.changes) > 14:
        print(f"  ... and {len(controller.changes) - 14} more")


if __name__ == "__main__":
    main()
