"""Edge-case tests for the evaluator: caps, truth(), nesting depth."""

import pytest

from repro.constraints.ast import (
    And,
    Constraint,
    Implies,
    Not,
    Or,
    exists,
    forall,
    pred,
)
from repro.constraints.builtins import standard_registry
from repro.constraints.evaluator import Evaluator
from repro.core.context import Context


def _pool(n, ctx_type="location"):
    contexts = [
        Context(
            ctx_id=f"e{i}",
            ctx_type=ctx_type,
            subject="s",
            value=(float(i), 0.0),
            timestamp=float(i),
        )
        for i in range(n)
    ]
    return contexts, (lambda t: contexts if t == ctx_type else ())


class TestMaxLinksCap:
    def test_cap_truncates_deterministically(self):
        registry = standard_registry()
        evaluator = Evaluator(registry, max_links=3)
        contexts, domain = _pool(10)
        constraint = Constraint(
            "all-false", forall("x", "location", pred("false"))
        )
        violations = evaluator.violations(constraint, domain)
        assert len(violations) == 3
        # Deterministic: repeated evaluation returns the same subset.
        assert violations == evaluator.violations(constraint, domain)

    def test_generous_default_does_not_bind(self):
        registry = standard_registry()
        evaluator = Evaluator(registry)
        contexts, domain = _pool(50)
        constraint = Constraint(
            "all-false", forall("x", "location", pred("false"))
        )
        assert len(evaluator.violations(constraint, domain)) == 50


class TestTruthShortCircuit:
    def test_truth_agrees_with_evaluate(self):
        registry = standard_registry()
        evaluator = Evaluator(registry)
        contexts, domain = _pool(6)
        formulas = [
            forall(
                "x",
                "location",
                Implies(pred("true"), pred("distinct", "x", "x")),
            ),
            exists("x", "location", pred("true")),
            forall(
                "a",
                "location",
                forall(
                    "b",
                    "location",
                    Or(pred("before", "a", "b"), pred("before", "b", "a"))
                    | pred("distinct", "a", "b").__invert__(),
                ),
            ),
        ]
        for formula in formulas:
            assert evaluator.truth(formula, domain) == evaluator.evaluate(
                formula, domain
            ).value

    def test_truth_short_circuits_universal(self):
        """truth() stops at the first counterexample."""
        registry = standard_registry()
        calls = []
        registry.replace(
            "probe", lambda c: calls.append(c.ctx_id) or False
        )
        evaluator = Evaluator(registry)
        contexts, domain = _pool(10)
        evaluator.truth(forall("x", "location", pred("probe", "x")), domain)
        assert len(calls) == 1

    def test_truth_short_circuits_existential(self):
        registry = standard_registry()
        calls = []
        registry.replace(
            "probe", lambda c: calls.append(c.ctx_id) or True
        )
        evaluator = Evaluator(registry)
        contexts, domain = _pool(10)
        evaluator.truth(exists("x", "location", pred("probe", "x")), domain)
        assert len(calls) == 1

    def test_unknown_node_raises(self):
        registry = standard_registry()
        evaluator = Evaluator(registry)
        with pytest.raises(TypeError):
            evaluator.truth("not a formula", lambda t: ())  # type: ignore


class TestDeepNesting:
    def test_three_quantifier_constraint(self):
        """Ternary constraints work end to end (generic arity,
        Section 3.4's 'different types and numbers of contexts')."""
        registry = standard_registry()
        evaluator = Evaluator(registry)
        contexts, domain = _pool(4)
        constraint = Constraint(
            "monotone-triple",
            forall(
                "a",
                "location",
                forall(
                    "b",
                    "location",
                    forall(
                        "c",
                        "location",
                        Implies(
                            And(
                                pred("before", "a", "b"),
                                pred("before", "b", "c"),
                            ),
                            pred("before", "a", "c"),
                        ),
                    ),
                ),
            ),
        )
        # Transitivity of < holds: no violations.
        assert evaluator.violations(constraint, domain) == []
