"""Property-based equivalence: compiled kernels vs. the interpreter.

The acceptance bar for the compilation/indexing layer is *observational
equivalence*: a checker with kernels and join pruning enabled must
produce the identical violation sequence -- same inconsistencies, same
order -- as the pure interpreted reference path, on any stream.  These
tests machine-check that over random streams and a mix of constraints,
including one deliberately outside the compilable fragment (so the
interpreter fallback stays exercised), and pin the accounting counters
that report which path actually ran.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ast import Constraint, Implies, exists, forall, pred
from repro.constraints.builtins import standard_registry
from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.middleware.pool import ContextPool
from repro.obs.telemetry import Telemetry


def _ctx(index, x, subject="p"):
    return Context(
        ctx_id=f"e{index:03d}",
        ctx_type="location",
        subject=subject,
        value=(float(x), 0.0),
        timestamp=float(index),
    )


def velocity_constraint(bound=1.5, gap=1.5):
    return parse_constraint(
        "velocity",
        f"forall l1 in location, forall l2 in location : "
        f"(same_subject(l1, l2) and before(l1, l2) "
        f"and within_time(l1, l2, {gap})) "
        f"implies velocity_le(l1, l2, {bound})",
    )


def provenance_constraint():
    return parse_constraint(
        "provenance",
        "forall r in location : far(r) implies "
        "(exists s in location : before(s, r))",
    )


def shadowing_constraint():
    """Out of the compilable fragment: the existential re-binds ``x``.

    The interpreter handles the shadowing fine; the compiler refuses
    it, so checking this constraint must fall back per evaluation.
    """
    return Constraint(
        "shadowed",
        forall(
            "x",
            "location",
            Implies(pred("true"), exists("x", "location", pred("far", "x"))),
        ),
    )


def _registry():
    registry = standard_registry()
    registry.register("far", lambda c: c.position[0] > 5.0)
    return registry


def _detect_stream(checker, contexts):
    """Feed a stream, returning the full per-arrival violation trace."""
    pool = ContextPool()
    trace = []
    for ctx in contexts:
        found = checker.detect(ctx, pool.contents(), now=ctx.timestamp)
        trace.append(
            (
                ctx.ctx_id,
                [
                    (inc.constraint, sorted(c.ctx_id for c in inc.contexts))
                    for inc in found
                ],
            )
        )
        pool.add(ctx)
    return trace


def _checker(kernels):
    return ConstraintChecker(
        [velocity_constraint(), provenance_constraint(), shadowing_constraint()],
        registry=_registry(),
        kernels=kernels,
    )


class TestStreamEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.integers(0, 8), min_size=1, max_size=10))
    def test_single_subject_traces_identical(self, xs):
        contexts = [_ctx(i, x) for i, x in enumerate(xs)]
        assert _detect_stream(_checker(True), contexts) == _detect_stream(
            _checker(False), contexts
        )

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 8), st.sampled_from(["p", "q"])),
            min_size=1,
            max_size=10,
        )
    )
    def test_multi_subject_traces_identical(self, moves):
        contexts = [
            _ctx(i, x, subject=subject) for i, (x, subject) in enumerate(moves)
        ]
        assert _detect_stream(_checker(True), contexts) == _detect_stream(
            _checker(False), contexts
        )

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 8), min_size=1, max_size=8))
    def test_full_check_matches_incremental_union(self, xs):
        # check_all is the interpreted ground truth; the kernels-on
        # incremental trace must find exactly the same violations for
        # the pairwise velocity constraint.
        contexts = [_ctx(i, x) for i, x in enumerate(xs)]
        checker = ConstraintChecker([velocity_constraint()], registry=_registry())
        incremental = {
            frozenset(ids)
            for _, found in _detect_stream(checker, contexts)
            for _, ids in found
        }
        full = {
            frozenset(c.ctx_id for c in inc.contexts)
            for inc in checker.check_all(contexts, now=len(contexts))
        }
        assert incremental == full


class TestAccounting:
    def _stream(self):
        return [
            _ctx(i, x, subject="pq"[i % 2])
            for i, x in enumerate([0, 0, 8, 8, 1, 7, 2, 6])
        ]

    def test_engine_counters_report_both_paths(self):
        checker = _checker(True)
        _detect_stream(checker, self._stream())
        engine = checker._engine
        # velocity + provenance compile; "shadowed" falls back.
        assert engine.kernel_hits > 0
        assert engine.interpreter_fallbacks > 0
        # Two subjects: the velocity join prunes cross-subject pairs.
        assert engine.bindings_pruned > 0
        assert engine.bindings_enumerated > 0

    def test_kernels_off_never_hits_kernels(self):
        checker = _checker(False)
        _detect_stream(checker, self._stream())
        engine = checker._engine
        assert engine.kernel_hits == 0
        assert engine.interpreter_fallbacks > 0
        assert engine.bindings_pruned == 0

    def test_telemetry_counters_emitted(self):
        checker = _checker(True)
        checker.telemetry = Telemetry(enabled=True)
        _detect_stream(checker, self._stream())
        registry = checker.telemetry.registry
        engine = checker._engine
        assert (
            registry.value("check_bindings_enumerated")
            == engine.bindings_enumerated
        )
        assert registry.value("check_bindings_pruned") == engine.bindings_pruned
        assert registry.value("check_kernel_hits") == engine.kernel_hits
        assert (
            registry.value("check_interpreter_fallbacks")
            == engine.interpreter_fallbacks
        )
        assert registry.value("check_kernel_hits") > 0
