"""Unit tests for formula evaluation with link generation."""

import pytest

from repro.constraints.ast import (
    And,
    Constraint,
    Implies,
    Not,
    Or,
    exists,
    forall,
    pred,
)
from repro.constraints.builtins import standard_registry
from repro.constraints.evaluator import Evaluator
from repro.constraints.links import Link


@pytest.fixture
def evaluator():
    return Evaluator(standard_registry())


def domain_of(*contexts):
    by_type = {}
    for ctx in contexts:
        by_type.setdefault(ctx.ctx_type, []).append(ctx)
    return lambda t: by_type.get(t, ())


class TestPredicates:
    def test_true_predicate_yields_sat_link(self, evaluator, mk):
        a = mk(timestamp=1.0)
        b = mk(timestamp=2.0)
        result = evaluator.evaluate(
            pred("before", "x", "y"), domain_of(), {"x": a, "y": b}
        )
        assert result.value
        assert result.sat_links == frozenset({Link.of(x=a, y=b)})
        assert result.vio_links == frozenset()

    def test_false_predicate_yields_vio_link(self, evaluator, mk):
        a = mk(timestamp=2.0)
        b = mk(timestamp=1.0)
        result = evaluator.evaluate(
            pred("before", "x", "y"), domain_of(), {"x": a, "y": b}
        )
        assert not result.value
        assert result.vio_links == frozenset({Link.of(x=a, y=b)})

    def test_unbound_variable(self, evaluator):
        with pytest.raises(NameError, match="unbound variable"):
            evaluator.evaluate(pred("before", "x", "y"), domain_of(), {})


class TestConnectives:
    def test_not_swaps_links(self, evaluator, mk):
        a, b = mk(timestamp=1.0), mk(timestamp=2.0)
        inner = pred("before", "x", "y")
        result = evaluator.evaluate(Not(inner), domain_of(), {"x": a, "y": b})
        assert not result.value
        assert result.vio_links == frozenset({Link.of(x=a, y=b)})

    def test_and_violation_blames_failed_conjunct(self, evaluator, mk):
        a, b = mk(timestamp=1.0), mk(timestamp=2.0)
        formula = And(pred("before", "x", "y"), pred("false"))
        result = evaluator.evaluate(formula, domain_of(), {"x": a, "y": b})
        assert not result.value
        # Only the failed conjunct (false()) explains the violation.
        assert result.vio_links == frozenset({Link(frozenset())})

    def test_and_satisfaction_cross_joins(self, evaluator, mk):
        a, b = mk(timestamp=1.0), mk(timestamp=2.0)
        formula = And(pred("before", "x", "y"), pred("distinct", "x", "y"))
        result = evaluator.evaluate(formula, domain_of(), {"x": a, "y": b})
        assert result.value
        assert result.sat_links == frozenset({Link.of(x=a, y=b)})

    def test_or_violation_cross_joins(self, evaluator, mk):
        a = mk(timestamp=2.0)
        b = mk(timestamp=1.0)
        formula = Or(pred("before", "x", "y"), pred("false"))
        result = evaluator.evaluate(formula, domain_of(), {"x": a, "y": b})
        assert not result.value
        assert result.vio_links == frozenset({Link.of(x=a, y=b)})

    def test_implies_vacuous_truth(self, evaluator, mk):
        a, b = mk(timestamp=2.0), mk(timestamp=1.0)
        formula = Implies(pred("before", "x", "y"), pred("false"))
        result = evaluator.evaluate(formula, domain_of(), {"x": a, "y": b})
        assert result.value

    def test_implies_violation_joins_premise_and_conclusion(
        self, evaluator, mk
    ):
        a = mk(ctx_id="a", timestamp=1.0, value=(0.0, 0.0))
        b = mk(ctx_id="b", timestamp=2.0, value=(9.0, 0.0))
        formula = Implies(
            pred("before", "x", "y"), pred("velocity_le", "x", "y", 1.5)
        )
        result = evaluator.evaluate(formula, domain_of(), {"x": a, "y": b})
        assert not result.value
        assert result.vio_links == frozenset({Link.of(x=a, y=b)})


class TestQuantifiers:
    def test_universal_violations_name_culprits(self, evaluator, mk):
        """The running example: violating pairs become violation links."""
        d2 = mk(ctx_id="d2", timestamp=2.0, value=(1.0, 0.0))
        d3 = mk(ctx_id="d3", timestamp=3.0, value=(9.0, 0.0))
        constraint = Constraint(
            "velocity",
            forall(
                "l1",
                "location",
                forall(
                    "l2",
                    "location",
                    Implies(
                        pred("before", "l1", "l2"),
                        pred("velocity_le", "l1", "l2", 1.5),
                    ),
                ),
            ),
        )
        violations = evaluator.violations(constraint, domain_of(d2, d3))
        assert violations == [frozenset({d2, d3})]

    def test_satisfied_universal_has_no_violations(self, evaluator, mk):
        d1 = mk(timestamp=1.0, value=(0.0, 0.0))
        d2 = mk(timestamp=2.0, value=(1.0, 0.0))
        constraint = Constraint(
            "velocity",
            forall(
                "l1",
                "location",
                forall(
                    "l2",
                    "location",
                    Implies(
                        pred("before", "l1", "l2"),
                        pred("velocity_le", "l1", "l2", 1.5),
                    ),
                ),
            ),
        )
        assert evaluator.violations(constraint, domain_of(d1, d2)) == []

    def test_universal_over_empty_domain_is_true(self, evaluator):
        result = evaluator.evaluate(
            forall("x", "location", pred("false")), domain_of(), {}
        )
        assert result.value

    def test_existential_witness_links(self, evaluator, mk):
        a = mk(ctx_id="a", timestamp=1.0)
        target = mk(ctx_id="t", timestamp=5.0)
        formula = exists("r", "location", pred("before", "r", "t"))
        result = evaluator.evaluate(
            formula, domain_of(a, target), {"t": target}
        )
        assert result.value
        assert any(link.involves(a) for link in result.sat_links)

    def test_violated_existential_yields_empty_link(self, evaluator, mk):
        """A failed exists blames the enclosing binding, not the pool."""
        late = mk(ctx_id="late", timestamp=9.0)
        target = mk(ctx_id="t", timestamp=5.0)
        formula = exists("r", "location", pred("before", "r", "t"))
        result = evaluator.evaluate(
            formula, domain_of(late, target), {"t": target}
        )
        assert not result.value
        assert result.vio_links == frozenset({Link(frozenset())})

    def test_existential_over_empty_domain_is_false(self, evaluator):
        result = evaluator.evaluate(
            exists("x", "location", pred("true")), domain_of(), {}
        )
        assert not result.value


class TestViolationsAPI:
    def test_empty_links_are_skipped(self, evaluator, mk):
        constraint = Constraint(
            "impossible", exists("x", "location", pred("false"))
        )
        ctx = mk()
        # Violated, but no context set is to blame.
        assert evaluator.violations(constraint, domain_of(ctx)) == []

    def test_duplicate_context_sets_deduped(self, evaluator, mk):
        a = mk(ctx_id="a", timestamp=2.0)
        b = mk(ctx_id="b", timestamp=2.0)
        constraint = Constraint(
            "strict-order",
            forall(
                "x",
                "location",
                forall(
                    "y",
                    "location",
                    Implies(pred("distinct", "x", "y"), pred("before", "x", "y")),
                ),
            ),
        )
        violations = evaluator.violations(constraint, domain_of(a, b))
        # (a,b) and (b,a) both violate but name the same context set.
        assert violations == [frozenset({a, b})]
