"""Tests for equality-join analysis and candidate indexes.

Covers the static side (which joins :func:`analyze_joins` extracts,
and -- crucially -- which it refuses to extract because they would be
unsound) and the dynamic side: persistent :class:`CandidateIndex`
consistency across pool add/remove/expire, the per-call
:class:`EphemeralScopeIndex`, the checker's routing table and pool
attachment, and a shard checkpoint/restore round-trip with a live
index.
"""

import pickle

from repro.constraints.ast import And, Implies, Not, Or, pred
from repro.constraints.checker import ConstraintChecker
from repro.constraints.index import (
    CandidateIndex,
    EphemeralScopeIndex,
    analyze_joins,
)
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.engine.shard import ShardExecutionState, ShardSpec
from repro.middleware.pool import ContextPool

VARS = [("a", "location"), ("b", "location"), ("c", "location")]


def _ctx(index, subject="p", ctx_type="location", lifespan=1e9):
    return Context(
        ctx_id=f"i{index:03d}",
        ctx_type=ctx_type,
        subject=subject,
        value=(float(index), 0.0),
        timestamp=float(index),
        lifespan=lifespan,
    )


class TestAnalyzeJoins:
    def test_guarded_implication_joins_subjects(self):
        body = Implies(
            And(pred("same_subject", "a", "b"), pred("before", "a", "b")),
            pred("velocity_le", "a", "b", 1.5),
        )
        analysis = analyze_joins(VARS[:2], body)
        assert analysis.groups == (("subject", frozenset({0, 1})),)
        assert analysis.fields_joining(0, 1) == ("subject",)
        assert not analysis.is_empty

    def test_disjunctive_antecedent_is_not_a_guard(self):
        # (same_subject(a,b) or far(a)) implies bad(a,b): a binding
        # with differing subjects can still violate via far(a), so no
        # pruning is sound.
        body = Implies(
            Or(pred("same_subject", "a", "b"), pred("far", "a")),
            pred("bad", "a", "b"),
        )
        assert analyze_joins(VARS[:2], body).is_empty

    def test_negated_equality_in_disjunction_is_a_guard(self):
        # (not same_subject(a,b)) or ok(a,b): if the subjects differ
        # the body is already true, so equal subjects are required to
        # violate.
        body = Or(Not(pred("same_subject", "a", "b")), pred("ok", "a", "b"))
        analysis = analyze_joins(VARS[:2], body)
        assert analysis.groups == (("subject", frozenset({0, 1})),)

    def test_chained_guards_union_into_one_group(self):
        body = Implies(
            And(
                pred("same_subject", "a", "b"), pred("same_subject", "b", "c")
            ),
            pred("bad", "a", "b", "c"),
        )
        analysis = analyze_joins(VARS, body)
        assert analysis.groups == (("subject", frozenset({0, 1, 2})),)
        assert analysis.fields_joining(2, 0) == ("subject",)

    def test_distinct_fields_make_distinct_groups(self):
        body = Implies(
            And(pred("same_subject", "a", "b"), pred("same_type", "a", "b")),
            pred("bad", "a", "b"),
        )
        analysis = analyze_joins(VARS[:2], body)
        assert analysis.groups == (
            ("ctx_type", frozenset({0, 1})),
            ("subject", frozenset({0, 1})),
        )

    def test_same_variable_twice_is_not_a_join(self):
        body = Implies(pred("same_subject", "a", "a"), pred("bad", "a"))
        assert analyze_joins(VARS[:1], body).is_empty

    def test_unguarded_body_has_no_joins(self):
        body = pred("velocity_le", "a", "b", 1.5)
        assert analyze_joins(VARS[:2], body).is_empty


def _assert_index_matches(index, contexts):
    """The index answers every query exactly like a linear scan."""
    types = {ctx.ctx_type for ctx in contexts} | {"missing"}
    assert index.size == len(contexts)
    for ctx_type in types:
        scan = [c for c in contexts if c.ctx_type == ctx_type]
        assert list(index.extent(ctx_type)) == scan
        assert index.extent_size(ctx_type) == len(scan)
        for subject in {c.subject for c in contexts} | {"nobody"}:
            expected = [c for c in scan if c.subject == subject]
            got = list(index.candidates(ctx_type, [("subject", subject)]))
            assert got == expected


class TestCandidateIndex:
    def test_tracks_pool_add_remove_expire(self):
        pool = ContextPool()
        index = CandidateIndex(fields=["subject"])
        pool.add_listener(index)
        live = []
        for i in range(12):
            ctx = _ctx(
                i,
                subject="pq"[i % 2],
                ctx_type=("location", "badge")[i % 3 == 0],
                lifespan=5.0 if i < 4 else 1e9,
            )
            pool.add(ctx)
            live.append(ctx)
            _assert_index_matches(index, live)
        # Discard one from the middle (with an equal-but-distinct
        # instance, as strategies do).
        victim = live.pop(5)
        clone = Context(
            ctx_id=victim.ctx_id,
            ctx_type=victim.ctx_type,
            subject=victim.subject,
            value=victim.value,
            timestamp=victim.timestamp,
            lifespan=victim.lifespan,
        )
        assert pool.remove(clone)
        _assert_index_matches(index, live)
        # Expire the short-lived ones.
        expired = pool.expire(now=50.0)
        assert expired
        live = [c for c in live if c not in expired]
        _assert_index_matches(index, live)
        pool.clear()
        _assert_index_matches(index, [])

    def test_removing_unknown_context_is_a_noop(self):
        index = CandidateIndex(fields=["subject"])
        index.on_add(_ctx(0))
        index.on_remove(_ctx(99))
        assert index.size == 1

    def test_ensure_field_backfills_existing_contents(self):
        index = CandidateIndex()
        contexts = [_ctx(i, subject="pq"[i % 2]) for i in range(6)]
        for ctx in contexts:
            index.on_add(ctx)
        index.ensure_field("subject")
        _assert_index_matches(index, contexts)

    def test_unknown_field_raises(self):
        index = CandidateIndex()
        try:
            index.ensure_field("nope")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")

    def test_multi_restriction_filters(self):
        index = CandidateIndex(fields=["subject", "ctx_type"])
        contexts = [_ctx(i, subject="pq"[i % 2]) for i in range(6)]
        for ctx in contexts:
            index.on_add(ctx)
        got = list(
            index.candidates(
                "location", [("subject", "p"), ("ctx_type", "location")]
            )
        )
        assert got == [c for c in contexts if c.subject == "p"]

    def test_ephemeral_index_matches_scan(self):
        contexts = [
            _ctx(i, subject="pqr"[i % 3], ctx_type=("location", "badge")[i % 2])
            for i in range(15)
        ]
        _assert_index_matches_scope(EphemeralScopeIndex(contexts), contexts)


def _assert_index_matches_scope(index, contexts):
    for ctx_type in {"location", "badge", "missing"}:
        scan = [c for c in contexts if c.ctx_type == ctx_type]
        assert list(index.extent(ctx_type)) == scan
        assert index.extent_size(ctx_type) == len(scan)
        for subject in {"p", "q", "r", "nobody"}:
            expected = [c for c in scan if c.subject == subject]
            got = list(index.candidates(ctx_type, [("subject", subject)]))
            assert got == expected


def _velocity_constraint():
    return parse_constraint(
        "velocity",
        "forall l1 in location, forall l2 in location : "
        "(same_subject(l1, l2) and before(l1, l2) "
        "and within_time(l1, l2, 1.5)) implies velocity_le(l1, l2, 1.5)",
    )


def _badge_constraint():
    return parse_constraint(
        "badge-order",
        "forall b1 in badge, forall b2 in badge : "
        "(same_subject(b1, b2) and distinct(b1, b2)) "
        "implies within_time(b1, b2, 100.0)",
    )


class TestCheckerRouting:
    def test_routing_equals_filtered_sorted_scan(self):
        checker = ConstraintChecker([_velocity_constraint(), _badge_constraint()])
        checker.add_constraint(
            parse_constraint(
                "cross",
                "forall l in location, forall b in badge : "
                "same_subject(l, b) implies within_time(l, b, 1000.0)",
            )
        )
        for ctx_type in ("location", "badge", "unknown"):
            expected = [
                c
                for c in sorted(checker.constraints(), key=lambda c: c.name)
                if ctx_type in c.relevant_types()
            ]
            assert checker.constraints_for_type(ctx_type) == expected

    def test_irrelevant_type_routes_nowhere(self):
        checker = ConstraintChecker([_velocity_constraint()])
        assert checker.constraints_for_type("badge") == []
        assert not checker.is_relevant(_ctx(0, ctx_type="badge"))


class TestCheckerPoolAttachment:
    def test_attach_pool_builds_join_fields_and_tracks_pool(self):
        pool = ContextPool()
        seeded = [_ctx(i, subject="pq"[i % 2]) for i in range(4)]
        for ctx in seeded:
            pool.add(ctx)
        checker = ConstraintChecker([_velocity_constraint()])
        checker.attach_pool(pool)
        index = checker.pool_index
        assert index is not None
        _assert_index_matches(index, seeded)
        later = _ctx(10, subject="p")
        pool.add(later)
        _assert_index_matches(index, seeded + [later])

    def test_detection_identical_with_and_without_pool_index(self):
        contexts = [
            _ctx(i, subject="pq"[i % 2]) for i in range(10)
        ] + [
            # A too-fast hop for "p" to force violations.
            Context(
                ctx_id="fast",
                ctx_type="location",
                subject="p",
                value=(100.0, 0.0),
                timestamp=9.5,
            )
        ]

        def run(attach):
            checker = ConstraintChecker([_velocity_constraint()])
            pool = ContextPool()
            if attach:
                checker.attach_pool(pool)
            trace = []
            for ctx in contexts:
                found = checker.detect(ctx, pool.contents(), now=ctx.timestamp)
                trace.append(
                    (
                        ctx.ctx_id,
                        sorted(
                            sorted(c.ctx_id for c in inc.contexts)
                            for inc in found
                        ),
                    )
                )
                pool.add(ctx)
            return trace

        attached = run(attach=True)
        detached = run(attach=False)
        assert attached == detached
        assert any(violations for _, violations in attached)

    def test_scope_subset_falls_back_to_ephemeral_index(self):
        checker = ConstraintChecker([_velocity_constraint()])
        pool = ContextPool()
        checker.attach_pool(pool)
        for i in range(4):
            pool.add(_ctx(i, subject="p"))
        # A strategy excluding contexts from checking hands detect() a
        # strict subset of the pool; results must match a plain
        # unattached checker over the same scope.
        scope = pool.contents()[:2]
        probe = Context(
            ctx_id="fast",
            ctx_type="location",
            subject="p",
            value=(100.0, 0.0),
            timestamp=1.5,
        )
        found = checker.detect(probe, scope, now=2.0)
        plain = ConstraintChecker([_velocity_constraint()]).detect(
            probe, scope, now=2.0
        )
        assert [inc.contexts for inc in found] == [
            inc.contexts for inc in plain
        ]


class TestShardCheckpointRoundTrip:
    def test_restore_rebuilds_live_index_and_decisions_match(self):
        spec = ShardSpec(shard_id=0, constraints=(_velocity_constraint(),))
        stream = [
            _ctx(i, subject="pq"[i % 2], lifespan=30.0) for i in range(20)
        ]
        stream[13] = Context(
            ctx_id=stream[13].ctx_id,
            ctx_type="location",
            subject="p",
            value=(500.0, 0.0),
            timestamp=stream[13].timestamp,
            lifespan=30.0,
        )
        batches = [stream[i : i + 4] for i in range(0, len(stream), 4)]

        # Uninterrupted reference run.
        reference = ShardExecutionState(spec)
        for i, batch in enumerate(batches):
            reference.process_batch(i, batch)
        expected = reference.finish()

        # Interrupted run: checkpoint mid-stream, pickle it (as the
        # supervisor's ack queue does), restore into a fresh state.
        first = ShardExecutionState(spec)
        for i, batch in enumerate(batches[:3]):
            first.process_batch(i, batch)
        blob = pickle.dumps(first.checkpoint())
        resumed = ShardExecutionState(spec, checkpoint=pickle.loads(blob))

        index = resumed.pipeline.resolution.detector.pool_index
        assert index is not None
        _assert_index_matches(index, resumed.pipeline.pool.contents())

        for i, batch in enumerate(batches):
            resumed.process_batch(i, batch)  # replayed prefix is a no-op
        result = resumed.finish()

        assert [c.ctx_id for c in result.delivered] == [
            c.ctx_id for c in expected.delivered
        ]
        assert [c.ctx_id for c in result.discarded] == [
            c.ctx_id for c in expected.discarded
        ]
        assert result.stats["inconsistencies"] == expected.stats[
            "inconsistencies"
        ]
        assert result.stats["inconsistencies"] > 0
        _assert_index_matches(index, resumed.pipeline.pool.contents())
