"""Unit tests for constraint kernel compilation (constraints.compile).

The contract: a compiled kernel is observationally identical to
``Evaluator.truth`` on the same binding -- same truth value, same
predicate call order, same short-circuiting -- and formulas outside
the fragment compile to ``None`` (callers keep interpreting).
"""

from repro.constraints.ast import (
    And,
    Implies,
    Not,
    Or,
    exists,
    forall,
    pred,
)
from repro.constraints.builtins import standard_registry
from repro.constraints.compile import compile_kernel
from repro.constraints.evaluator import Evaluator
from repro.core.context import Context


def _ctx(index, x, subject="p"):
    return Context(
        ctx_id=f"k{index:03d}",
        ctx_type="location",
        subject=subject,
        value=(float(x), 0.0),
        timestamp=float(index),
    )


def _no_domain(ctx_type):
    return ()


VELOCITY_BODY = Implies(
    And(
        And(pred("same_subject", "l1", "l2"), pred("before", "l1", "l2")),
        pred("within_time", "l1", "l2", 1.5),
    ),
    pred("velocity_le", "l1", "l2", 1.5),
)


class TestCompilation:
    def test_quantifier_free_body_compiles(self):
        registry = standard_registry()
        kernel = compile_kernel(VELOCITY_BODY, ("l1", "l2"), registry)
        assert kernel is not None
        assert kernel.var_names == ("l1", "l2")
        assert kernel.registry_version == registry.version
        assert "def _kernel(" in kernel.source

    def test_kernel_agrees_with_interpreter(self):
        registry = standard_registry()
        kernel = compile_kernel(VELOCITY_BODY, ("l1", "l2"), registry)
        evaluator = Evaluator(registry, use_kernels=False)
        contexts = [_ctx(0, 0.0), _ctx(1, 9.0), _ctx(2, 9.5, subject="q")]
        for a in contexts:
            for b in contexts:
                expected = evaluator.truth(
                    VELOCITY_BODY, _no_domain, {"l1": a, "l2": b}
                )
                assert kernel.fn(a, b, _no_domain) == expected

    def test_literals_are_prebound(self):
        registry = standard_registry()
        kernel = compile_kernel(
            pred("within_time", "a", "b", 2.0), ("a", "b"), registry
        )
        assert kernel is not None
        assert kernel.fn(_ctx(0, 0.0), _ctx(1, 0.0), _no_domain)
        assert not kernel.fn(_ctx(0, 0.0), _ctx(5, 0.0), _no_domain)

    def test_short_circuit_call_order_matches_interpreter(self):
        registry = standard_registry()
        calls = []

        def spy(name, result):
            def fn(*_args):
                calls.append(name)
                return result

            return fn

        registry.register("sp_a", spy("a", False))
        registry.register("sp_b", spy("b", True))
        registry.register("sp_c", spy("c", False))
        body = Or(And(pred("sp_a", "x"), pred("sp_b", "x")), pred("sp_c", "x"))
        kernel = compile_kernel(body, ("x",), registry)
        ctx = _ctx(0, 0.0)

        calls.clear()
        kernel_value = kernel.fn(ctx, _no_domain)
        kernel_calls = list(calls)

        calls.clear()
        interp_value = Evaluator(registry, use_kernels=False).truth(
            body, _no_domain, {"x": ctx}
        )
        assert kernel_value == interp_value
        assert kernel_calls == calls  # a short-circuits past b; c runs

    def test_implies_short_circuits_consequent(self):
        registry = standard_registry()
        consequent_calls = []
        registry.register("boom", lambda c: consequent_calls.append(c) or True)
        body = Implies(pred("false"), pred("boom", "x"))
        kernel = compile_kernel(body, ("x",), registry)
        assert kernel.fn(_ctx(0, 0.0), _no_domain) is True
        assert consequent_calls == []

    def test_truthy_returns_coerced_to_bool(self):
        registry = standard_registry()
        registry.register("count", lambda c: len(c.subject))  # int, not bool
        kernel = compile_kernel(pred("count", "x"), ("x",), registry)
        assert kernel.fn(_ctx(0, 0.0), _no_domain) is True
        assert kernel.fn(_ctx(0, 0.0, subject=""), _no_domain) is False

    def test_quantifiers_in_body(self):
        registry = standard_registry()
        body = exists("s", "location", pred("before", "s", "r"))
        kernel = compile_kernel(body, ("r",), registry)
        early, late = _ctx(0, 1.0), _ctx(5, 2.0)

        def domain(ctx_type):
            return [early] if ctx_type == "location" else []

        assert kernel.fn(late, domain) is True
        assert kernel.fn(early, domain) is False

    def test_closed_universal_formula(self):
        registry = standard_registry()
        formula = forall(
            "a", "location", forall("b", "location", pred("same_subject", "a", "b"))
        )
        kernel = compile_kernel(formula, (), registry)
        same = [_ctx(0, 0.0), _ctx(1, 1.0)]
        mixed = same + [_ctx(2, 2.0, subject="q")]
        assert kernel.fn(lambda t: same) is True
        assert kernel.fn(lambda t: mixed) is False


class TestOutOfFragment:
    def test_unregistered_predicate_returns_none(self):
        registry = standard_registry()
        assert compile_kernel(pred("nope", "x"), ("x",), registry) is None

    def test_shadowed_quantifier_returns_none(self):
        registry = standard_registry()
        body = exists("x", "location", pred("true"))
        # The free variable list claims "x" is already bound outside.
        assert compile_kernel(body, ("x",), registry) is None

    def test_unbound_variable_returns_none(self):
        registry = standard_registry()
        assert compile_kernel(pred("same_subject", "x", "y"), ("x",), registry) is None

    def test_unknown_node_returns_none(self):
        registry = standard_registry()
        assert compile_kernel(Not("not a formula"), (), registry) is None


class TestRegistryVersioning:
    def test_register_and_replace_bump_version(self):
        registry = standard_registry()
        before = registry.version
        registry.register("fresh", lambda: True)
        assert registry.version == before + 1
        registry.replace("fresh", lambda: False)
        assert registry.version == before + 2

    def test_mutating_now_does_not_bump(self):
        registry = standard_registry()
        before = registry.version
        registry.now = 42.0
        assert registry.version == before

    def test_evaluator_cache_invalidated_on_replace(self):
        registry = standard_registry()
        registry.register("flag", lambda c: True)
        evaluator = Evaluator(registry)
        formula = pred("flag", "x")
        env = {"x": _ctx(0, 0.0)}
        assert evaluator.truth(formula, _no_domain, env) is True
        registry.replace("flag", lambda c: False)
        assert evaluator.truth(formula, _no_domain, env) is False

    def test_late_registration_brings_formula_into_fragment(self):
        registry = standard_registry()
        evaluator = Evaluator(registry)
        formula = pred("late", "x")
        assert evaluator.kernel_for(formula) is None
        registry.register("late", lambda c: True)
        assert evaluator.kernel_for(formula) is not None
