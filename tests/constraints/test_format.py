"""Tests for DSL formatting, including a hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ast import (
    And,
    Existential,
    Formula,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from repro.constraints.format import format_constraint, format_formula, format_term
from repro.constraints.parser import parse_constraint, parse_formula


class TestFormatTerm:
    def test_var(self):
        assert format_term(Var("x")) == "x"

    def test_numbers(self):
        assert format_term(Literal(3)) == "3"
        assert format_term(Literal(-2)) == "-2"
        assert format_term(Literal(1.5)) == "1.5"

    def test_strings(self):
        assert format_term(Literal("dock")) == "'dock'"
        assert format_term(Literal("it's")) == '"it\'s"'

    def test_unexpressible(self):
        with pytest.raises(ValueError):
            format_term(Literal(True))
        with pytest.raises(ValueError):
            format_term(Literal((1, 2)))


class TestFormatFormula:
    @pytest.mark.parametrize(
        "text",
        [
            "true()",
            "before(a, b)",
            "not before(a, b)",
            "a() and b() or c()",
            "a() or b() and c()",
            "a() and (b() or c())",
            "not (a() and b())",
            "a() implies b() implies c()",
            "forall x in t : p(x)",
            "forall x in t, forall y in t : p(x, y) implies q(x)",
            "forall x in t : p(x) implies (exists y in u : r(x, y))",
            "velocity_le(l1, l2, 1.5)",
        ],
    )
    def test_roundtrip_examples(self, text):
        ast = parse_formula(text)
        assert parse_formula(format_formula(ast)) == ast

    def test_app_constraints_roundtrip(self):
        from repro.apps.call_forwarding import CallForwardingApp
        from repro.apps.rfid_anomalies import RFIDAnomaliesApp

        for app in (CallForwardingApp(), RFIDAnomaliesApp()):
            for constraint in app.build_constraints():
                rendered = format_formula(constraint.formula)
                assert parse_formula(rendered) == constraint.formula

    def test_format_constraint_includes_name(self):
        constraint = parse_constraint("c1", "forall x in t : p(x)")
        assert format_constraint(constraint).startswith("c1: forall x in t")


# -- hypothesis round-trip over random formulas ------------------------------

_names = st.sampled_from(["p", "q", "rel", "velocity_le"])
_vars = st.sampled_from(["x", "y", "z"])
_types = st.sampled_from(["location", "badge", "rfid_read"])
_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(
        min_value=-1e6,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    st.text(alphabet="abcdef-_ ", max_size=8).filter(lambda s: "'" not in s),
)
_terms = st.one_of(_vars.map(Var), _literals.map(Literal))
_predicates = st.builds(
    Predicate, _names, st.lists(_terms, max_size=3).map(tuple)
)


def _formulas(children):
    return st.one_of(
        st.builds(Not, children),
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Implies, children, children),
        st.builds(Universal, _vars, _types, children),
        st.builds(Existential, _vars, _types, children),
    )


formula_strategy = st.recursive(_predicates, _formulas, max_leaves=12)


@settings(max_examples=300, deadline=None)
@given(formula_strategy)
def test_format_parse_roundtrip(formula):
    rendered = format_formula(formula)
    assert parse_formula(rendered) == formula
