"""Unit tests for the constraint AST."""

import pytest

from repro.constraints.ast import (
    And,
    Constraint,
    Existential,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
    exists,
    forall,
    pred,
)


class TestPred:
    def test_strings_become_vars_and_values_literals(self):
        p = pred("velocity_le", "l1", "l2", 1.5)
        assert p.func == "velocity_le"
        assert p.args == (Var("l1"), Var("l2"), Literal(1.5))

    def test_existing_terms_pass_through(self):
        p = pred("f", Var("x"), Literal("dock"))
        assert p.args == (Var("x"), Literal("dock"))

    def test_invalid_args_rejected(self):
        with pytest.raises(TypeError):
            Predicate("f", (object(),))


class TestVariables:
    def test_predicate_variables(self):
        p = pred("f", "a", "b", 3)
        assert p.variables() == {"a", "b"}
        assert p.free_variables() == {"a", "b"}

    def test_quantifier_binds(self):
        f = forall("a", "location", pred("f", "a", "b"))
        assert f.free_variables() == {"b"}
        assert f.variables() == {"a", "b"}

    def test_nested_quantifiers_close_formula(self):
        f = forall("a", "location", forall("b", "location", pred("f", "a", "b")))
        assert f.free_variables() == set()

    def test_connectives_union_variables(self):
        f = And(pred("f", "a"), Or(pred("g", "b"), Not(pred("h", "c"))))
        assert f.free_variables() == {"a", "b", "c"}


class TestQuantifiedTypes:
    def test_collects_all_domain_types(self):
        f = forall(
            "b",
            "badge",
            exists("l", "location", pred("agree", "b", "l")),
        )
        assert f.quantified_types() == {"badge", "location"}

    def test_predicate_has_none(self):
        assert pred("f", "a").quantified_types() == set()


class TestSugar:
    def test_operators(self):
        a, b = pred("f", "x"), pred("g", "x")
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)
        assert isinstance(a.implies(b), Implies)

    def test_walk_visits_every_node(self):
        f = forall("a", "t", And(pred("f", "a"), Not(pred("g", "a"))))
        kinds = [type(node).__name__ for node in f.walk()]
        assert kinds == ["Universal", "And", "Predicate", "Not", "Predicate"]


class TestConstraint:
    def test_closed_formula_accepted(self):
        c = Constraint("c1", forall("a", "t", pred("f", "a")))
        assert c.relevant_types() == {"t"}

    def test_free_variables_rejected(self):
        with pytest.raises(ValueError, match="free variables"):
            Constraint("c1", pred("f", "a"))

    def test_formulas_are_hashable(self):
        f1 = forall("a", "t", pred("f", "a"))
        f2 = forall("a", "t", pred("f", "a"))
        assert f1 == f2
        assert hash(f1) == hash(f2)
        assert len({f1, f2}) == 1
