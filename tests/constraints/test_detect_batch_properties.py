"""Property-based equivalence: ``detect_batch`` vs sequential ``detect``.

The acceptance bar for columnar batched detection is the same
observational-equivalence bar the kernels met: on any stream, feeding
arrivals through :meth:`ConstraintChecker.detect_batch` in chunks of
any size -- with batch kernels on or off -- must produce verdicts
identical to the per-context :meth:`detect` reference sweep, same
inconsistencies, same order.  The suite also pins the memo layer's
correctness under invalidation: flipping a registered predicate
mid-stream (a ``FunctionRegistry.version`` bump) must yield exactly
the decisions a fresh checker would produce, never a stale memo hit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.builtins import standard_registry
from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context

BATCH_SIZES = (1, 7, 64)


def _ctx(index, x, subject="p", lifespan=None):
    kwargs = {} if lifespan is None else {"lifespan": lifespan}
    return Context(
        ctx_id=f"b{index:03d}",
        ctx_type="location",
        subject=subject,
        value=(float(x), 0.0),
        timestamp=float(index),
        **kwargs,
    )


def velocity_constraint(bound=1.5, gap=1.5):
    return parse_constraint(
        "velocity",
        f"forall l1 in location, forall l2 in location : "
        f"(same_subject(l1, l2) and before(l1, l2) "
        f"and within_time(l1, l2, {gap})) "
        f"implies velocity_le(l1, l2, {bound})",
    )


def provenance_constraint():
    return parse_constraint(
        "provenance",
        "forall r in location : far(r) implies "
        "(exists s in location : before(s, r))",
    )


def _registry():
    registry = standard_registry()
    registry.register("far", lambda c: c.position[0] > 5.0)
    return registry


def _checker(kernels=True, batch_kernels=True, registry=None):
    return ConstraintChecker(
        [velocity_constraint(), provenance_constraint()],
        registry=registry or _registry(),
        kernels=kernels,
        batch_kernels=batch_kernels,
    )


def _canon(verdicts):
    """Order-preserving comparable form of a per-row verdict list."""
    return [
        [
            (inc.constraint, sorted(c.ctx_id for c in inc.contexts))
            for inc in row
        ]
        for row in verdicts
    ]


def _sequential_trace(checker, contexts):
    """The reference: one ``detect`` per arrival, pool accumulating."""
    pool = []
    trace = []
    for ctx in contexts:
        now = ctx.timestamp
        scope = [c for c in pool if not c.is_expired(now)]
        trace.append(checker.detect(ctx, scope, now))
        pool.append(ctx)
    return _canon(trace)


def _batched_trace(checker, contexts, batch_size):
    """The same stream through ``detect_batch`` in fixed-size chunks."""
    pool = []
    trace = []
    for start in range(0, len(contexts), batch_size):
        chunk = contexts[start : start + batch_size]
        nows = [ctx.timestamp for ctx in chunk]
        trace.extend(checker.detect_batch(chunk, pool, nows))
        pool.extend(chunk)
    return _canon(trace)


def moves_strategy(max_size=12):
    return st.lists(
        st.tuples(st.integers(0, 8), st.sampled_from(["p", "q"])),
        min_size=1,
        max_size=max_size,
    )


class TestBatchedEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(moves=moves_strategy(), kernels=st.booleans())
    def test_detect_batch_matches_sequential_detect(self, moves, kernels):
        contexts = [
            _ctx(i, x, subject=subject) for i, (x, subject) in enumerate(moves)
        ]
        reference = _sequential_trace(_checker(kernels=kernels), contexts)
        for batch_size in BATCH_SIZES:
            assert (
                _batched_trace(
                    _checker(kernels=kernels), contexts, batch_size
                )
                == reference
            ), f"batch_size={batch_size} kernels={kernels}"

    @settings(max_examples=60, deadline=None)
    @given(moves=moves_strategy())
    def test_batch_kernels_flag_is_decision_neutral(self, moves):
        contexts = [
            _ctx(i, x, subject=subject) for i, (x, subject) in enumerate(moves)
        ]
        for batch_size in BATCH_SIZES:
            assert _batched_trace(
                _checker(batch_kernels=True), contexts, batch_size
            ) == _batched_trace(
                _checker(batch_kernels=False), contexts, batch_size
            )

    @settings(max_examples=50, deadline=None)
    @given(
        moves=moves_strategy(max_size=8),
        lifespans=st.lists(
            st.one_of(st.none(), st.floats(0.5, 4.0)),
            min_size=8,
            max_size=8,
        ),
    )
    def test_mid_batch_expiry_is_honoured(self, moves, lifespans):
        # Finite lifespans: detect_batch's per-row expiry cutoff must
        # reproduce the reference path's alive-at-now filtering.
        contexts = [
            _ctx(i, x, subject=subject, lifespan=lifespans[i % len(lifespans)])
            for i, (x, subject) in enumerate(moves)
        ]
        reference = _sequential_trace(_checker(), contexts)
        for batch_size in BATCH_SIZES:
            assert (
                _batched_trace(_checker(), contexts, batch_size) == reference
            ), f"batch_size={batch_size}"


class TestMemoInvalidation:
    @settings(max_examples=40, deadline=None)
    @given(moves=moves_strategy(max_size=10), flip_at=st.integers(0, 9))
    def test_registry_flip_mid_stream_matches_fresh_checker(
        self, moves, flip_at
    ):
        """A ``FunctionRegistry.version`` bump must invalidate the memo.

        The stream is split at ``flip_at``; between the two halves the
        ``far`` predicate is replaced with its complement.  The warm
        checker (whose memo tables served the first half) must agree
        on the second half with a fresh checker that never saw the old
        predicate -- a stale memo hit would diverge.
        """
        contexts = [
            _ctx(i, x, subject=subject) for i, (x, subject) in enumerate(moves)
        ]
        flip_at = min(flip_at, len(contexts))
        head, tail = contexts[:flip_at], contexts[flip_at:]

        registry = _registry()
        warm = _checker(registry=registry)
        if head:
            warm.detect_batch(head, [], [ctx.timestamp for ctx in head])
        registry.replace("far", lambda c: c.position[0] <= 5.0)
        warm_tail = _canon(
            warm.detect_batch(tail, head, [ctx.timestamp for ctx in tail])
        )

        fresh_registry = _registry()
        fresh_registry.replace("far", lambda c: c.position[0] <= 5.0)
        fresh = _checker(registry=fresh_registry)
        fresh_tail = _canon(
            fresh.detect_batch(tail, head, [ctx.timestamp for ctx in tail])
        )
        assert warm_tail == fresh_tail

    def test_shared_subexpression_memo_counts_hits(self):
        # The canonical-key memo is probed per batch; the first batch
        # compiles and populates it, so a second batch over the same
        # plans must hit instead of recompiling (observable through
        # the telemetry counters the checker exports).
        from repro.obs.telemetry import Telemetry

        checker = _checker()
        checker.telemetry = Telemetry(enabled=True)
        contexts = [_ctx(i, x) for i, x in enumerate([0, 4, 8, 1, 7])]
        first = contexts[:3]
        second = contexts[3:]
        checker.detect_batch(first, [], [ctx.timestamp for ctx in first])
        checker.detect_batch(second, first, [ctx.timestamp for ctx in second])
        registry = checker.telemetry.registry
        assert registry.value("subexpr_memo_misses_total") > 0
        assert registry.value("subexpr_memo_hits_total") > 0
