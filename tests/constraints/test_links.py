"""Unit tests for links (violation/satisfaction explanations)."""

from repro.constraints.links import EMPTY_LINK, Link, cross_join


class TestLink:
    def test_of_and_contexts(self, mk):
        a, b = mk(ctx_id="a"), mk(ctx_id="b")
        link = Link.of(p1=a, p2=b)
        assert link.contexts() == {a, b}
        assert link.involves(a)
        assert not link.involves(mk(ctx_id="c"))

    def test_equality_ignores_construction_order(self, mk):
        a, b = mk(ctx_id="a"), mk(ctx_id="b")
        assert Link.of(x=a, y=b) == Link.of(y=b, x=a)

    def test_merge_and_extend(self, mk):
        a, b, c = mk(ctx_id="a"), mk(ctx_id="b"), mk(ctx_id="c")
        merged = Link.of(x=a).merge(Link.of(y=b))
        assert merged.as_dict() == {"x": a, "y": b}
        extended = merged.extend("z", c)
        assert len(extended) == 3

    def test_same_context_under_two_vars(self, mk):
        a = mk(ctx_id="a")
        link = Link.of(x=a, y=a)
        assert len(link) == 2
        assert link.contexts() == {a}

    def test_empty_link(self):
        assert len(EMPTY_LINK) == 0
        assert EMPTY_LINK.contexts() == frozenset()


class TestCrossJoin:
    def test_pairwise_merge(self, mk):
        a, b, c = mk(ctx_id="a"), mk(ctx_id="b"), mk(ctx_id="c")
        left = [Link.of(x=a), Link.of(x=b)]
        right = [Link.of(y=c)]
        joined = cross_join(left, right)
        assert joined == frozenset(
            {Link.of(x=a, y=c), Link.of(x=b, y=c)}
        )

    def test_empty_side_passes_other_through(self, mk):
        a = mk(ctx_id="a")
        links = [Link.of(x=a)]
        assert cross_join(links, []) == frozenset(links)
        assert cross_join([], links) == frozenset(links)

    def test_join_with_empty_link_is_identity(self, mk):
        a = mk(ctx_id="a")
        assert cross_join([Link.of(x=a)], [EMPTY_LINK]) == frozenset(
            {Link.of(x=a)}
        )
