"""Unit tests for the predicate registry and standard predicates."""

import pytest

from repro.constraints.builtins import FunctionRegistry, standard_registry


@pytest.fixture
def registry():
    return standard_registry()


class TestFunctionRegistry:
    def test_register_and_resolve(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: True)
        assert registry.resolve("f")() is True
        assert "f" in registry

    def test_decorator_form(self):
        registry = FunctionRegistry()

        @registry.register("g")
        def g():
            return False

        assert registry.resolve("g") is g

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: True)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("f", lambda: False)

    def test_replace_overwrites(self):
        registry = FunctionRegistry()
        registry.register("f", lambda: True)
        registry.replace("f", lambda: False)
        assert registry.resolve("f")() is False

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown predicate"):
            FunctionRegistry().resolve("ghost")


class TestStandardPredicates:
    def test_subject_and_identity(self, registry, mk):
        a = mk(ctx_id="a", subject="peter")
        b = mk(ctx_id="b", subject="peter")
        c = mk(ctx_id="c", subject="alice")
        assert registry.resolve("same_subject")(a, b)
        assert not registry.resolve("same_subject")(a, c)
        assert registry.resolve("distinct")(a, b)
        assert not registry.resolve("distinct")(a, a)

    def test_temporal_predicates(self, registry, mk):
        early = mk(timestamp=1.0)
        late = mk(timestamp=4.0)
        assert registry.resolve("before")(early, late)
        assert not registry.resolve("before")(late, early)
        assert registry.resolve("after")(late, early)
        assert registry.resolve("within_time")(early, late, 3.0)
        assert not registry.resolve("within_time")(early, late, 2.9)

    def test_older_than_uses_registry_now(self, registry, mk):
        ctx = mk(timestamp=10.0)
        registry.now = 15.0
        assert registry.resolve("older_than")(ctx, 4.0)
        assert not registry.resolve("older_than")(ctx, 5.0)

    def test_spatial_predicates(self, registry, mk):
        a = mk(value=(0.0, 0.0))
        b = mk(value=(3.0, 4.0))
        assert registry.resolve("distance_le")(a, b, 5.0)
        assert not registry.resolve("distance_le")(a, b, 4.9)
        assert registry.resolve("distance_ge")(a, b, 5.0)

    def test_velocity(self, registry, mk):
        a = mk(value=(0.0, 0.0), timestamp=0.0)
        b = mk(value=(3.0, 0.0), timestamp=2.0)
        assert registry.resolve("velocity_le")(a, b, 1.5)
        assert not registry.resolve("velocity_le")(a, b, 1.4)

    def test_velocity_zero_dt(self, registry, mk):
        a = mk(value=(0.0, 0.0), timestamp=1.0)
        b = mk(value=(0.0, 0.0), timestamp=1.0)
        far = mk(value=(9.0, 0.0), timestamp=1.0)
        assert registry.resolve("velocity_le")(a, b, 1.0)
        assert not registry.resolve("velocity_le")(a, far, 1.0)

    def test_value_predicates(self, registry, mk):
        ctx = mk(value="dock", attributes=(("floor", 2),))
        assert registry.resolve("value_eq")(ctx, "dock")
        assert registry.resolve("value_in")(ctx, ["dock", "staging"])
        assert registry.resolve("attr_eq")(ctx, "floor", 2)
        assert registry.resolve("attr_ne")(ctx, "floor", 3)

    def test_constants(self, registry):
        assert registry.resolve("true")()
        assert not registry.resolve("false")()
