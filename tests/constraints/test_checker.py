"""Unit tests for the constraint checker (detector interface)."""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context


def velocity():
    return parse_constraint(
        "velocity",
        "forall l1 in location, forall l2 in location : "
        "(same_subject(l1, l2) and before(l1, l2)) "
        "implies velocity_le(l1, l2, 1.5)",
    )


def feasible():
    return parse_constraint(
        "feasible", "forall l in location : velocity_le(l, l, 1.0)"
    )


def _loc(ctx_id, x, t, subject="p"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject=subject,
        value=(float(x), 0.0),
        timestamp=float(t),
    )


class TestRelevance:
    def test_relevant_type(self, mk):
        checker = ConstraintChecker([velocity()])
        assert checker.is_relevant(mk(ctx_type="location"))
        assert not checker.is_relevant(mk(ctx_type="temperature"))

    def test_relevance_grows_with_constraints(self, mk):
        checker = ConstraintChecker([velocity()])
        assert not checker.is_relevant(mk(ctx_type="badge"))
        checker.add_constraint(
            parse_constraint("badge-c", "forall b in badge : true()")
        )
        assert checker.is_relevant(mk(ctx_type="badge"))


class TestConstraintManagement:
    def test_duplicate_names_rejected(self):
        checker = ConstraintChecker([velocity()])
        with pytest.raises(ValueError, match="already added"):
            checker.add_constraint(velocity())

    def test_constraints_listing_sorted(self):
        checker = ConstraintChecker([velocity(), feasible()])
        assert [c.name for c in checker.constraints()] == [
            "feasible",
            "velocity",
        ]
        assert checker.constraint("velocity").name == "velocity"


class TestDetection:
    def test_detects_only_violations_involving_new_context(self):
        checker = ConstraintChecker([velocity()])
        a = _loc("a", 0.0, 0.0)
        b = _loc("b", 9.0, 1.0)  # violates with a
        c = _loc("c", 9.5, 2.0)  # fine with b, violates with a
        assert checker.detect(a, [], now=0.0) == []
        incs_b = checker.detect(b, [a], now=1.0)
        assert [sorted(x.ctx_id for x in i.contexts) for i in incs_b] == [
            ["a", "b"]
        ]
        incs_c = checker.detect(c, [a, b], now=2.0)
        assert [sorted(x.ctx_id for x in i.contexts) for i in incs_c] == [
            ["a", "c"]
        ]

    def test_inconsistency_carries_constraint_and_time(self):
        checker = ConstraintChecker([velocity()])
        a = _loc("a", 0.0, 0.0)
        b = _loc("b", 9.0, 1.0)
        (inc,) = checker.detect(b, [a], now=1.0)
        assert inc.constraint == "velocity"
        assert inc.detected_at == 1.0

    def test_multiple_constraints_report_separately(self):
        checker = ConstraintChecker([velocity(), feasible()])
        a = _loc("a", 0.0, 0.0)
        b = _loc("b", 9.0, 1.0)
        checker.detect(a, [], now=0.0)
        incs = checker.detect(b, [a], now=1.0)
        assert sorted(i.constraint for i in incs) == ["velocity"]

    def test_registry_now_updated(self):
        checker = ConstraintChecker([velocity()])
        checker.detect(_loc("a", 0.0, 0.0), [], now=42.0)
        assert checker.registry.now == 42.0

    def test_detect_counts_calls(self):
        checker = ConstraintChecker([velocity()])
        checker.detect(_loc("a", 0.0, 0.0), [], now=0.0)
        checker.detect(_loc("b", 1.0, 1.0), [], now=1.0)
        assert checker.detect_calls == 2


class TestCheckAll:
    def test_reports_every_current_violation(self):
        checker = ConstraintChecker([velocity()])
        contexts = [
            _loc("d2", 1.0, 1.0),
            _loc("d3", 9.0, 2.0),
            _loc("d4", 2.0, 3.0),
        ]
        incs = checker.check_all(contexts, now=3.0)
        found = {
            tuple(sorted(c.ctx_id for c in inc.contexts)) for inc in incs
        }
        assert found == {("d2", "d3"), ("d3", "d4")}

    def test_empty_pool(self):
        checker = ConstraintChecker([velocity()])
        assert checker.check_all([], now=0.0) == []
