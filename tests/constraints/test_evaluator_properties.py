"""Property tests: the link-generating evaluator against a naive
reference interpreter.

The reference interpreter computes only truth values, with the obvious
semantics and none of the link machinery; hypothesis generates random
quantified formulas and random context pools and checks the two agree.
A second property ties links to truth: a false universal must name
exactly the violating contexts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ast import (
    And,
    Existential,
    Implies,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from repro.constraints.builtins import standard_registry
from repro.constraints.evaluator import Evaluator
from repro.core.context import Context


def reference_eval(formula, domain, env, registry):
    """Truth-only reference semantics."""
    if isinstance(formula, Predicate):
        fn = registry.resolve(formula.func)
        args = [
            env[a.name] if isinstance(a, Var) else a.value
            for a in formula.args
        ]
        return bool(fn(*args))
    if isinstance(formula, Not):
        return not reference_eval(formula.operand, domain, env, registry)
    if isinstance(formula, And):
        return reference_eval(
            formula.left, domain, env, registry
        ) and reference_eval(formula.right, domain, env, registry)
    if isinstance(formula, Or):
        return reference_eval(
            formula.left, domain, env, registry
        ) or reference_eval(formula.right, domain, env, registry)
    if isinstance(formula, Implies):
        return not reference_eval(
            formula.left, domain, env, registry
        ) or reference_eval(formula.right, domain, env, registry)
    if isinstance(formula, Universal):
        return all(
            reference_eval(
                formula.body, domain, {**env, formula.var: element}, registry
            )
            for element in domain(formula.ctx_type)
        )
    if isinstance(formula, Existential):
        return any(
            reference_eval(
                formula.body, domain, {**env, formula.var: element}, registry
            )
            for element in domain(formula.ctx_type)
        )
    raise TypeError(formula)


_TYPES = ["location", "badge"]
_VARS = ("x", "y")


def _bodies(bound_vars):
    """Connective trees over predicates of the bound variables."""
    leaves = [Predicate("true", ()), Predicate("false", ())]
    for name in bound_vars:
        leaves.append(Predicate("is_even", (Var(name),)))
        for other in bound_vars:
            leaves.append(Predicate("before", (Var(name), Var(other))))
    leaf = st.sampled_from(leaves)

    def extend(children):
        return st.one_of(
            st.builds(Not, children),
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Implies, children, children),
        )

    return st.recursive(leaf, extend, max_leaves=6)


@st.composite
def closed_formulas(draw):
    """One or two quantifiers over a random connective body."""
    depth = draw(st.integers(min_value=1, max_value=2))
    bound = _VARS[:depth]
    formula = draw(_bodies(bound))
    for var in reversed(bound):
        quantifier = Universal if draw(st.booleans()) else Existential
        ctx_type = draw(st.sampled_from(_TYPES))
        formula = quantifier(var, ctx_type, formula)
    return formula


def _pool(values):
    contexts = [
        Context(
            ctx_id=f"p{i}",
            ctx_type=_TYPES[i % 2],
            subject="s",
            value=v,
            timestamp=float(v),
        )
        for i, v in enumerate(values)
    ]
    by_type = {}
    for ctx in contexts:
        by_type.setdefault(ctx.ctx_type, []).append(ctx)
    return lambda t: by_type.get(t, ())


def _registry():
    registry = standard_registry()
    registry.replace("is_even", lambda c: int(c.value) % 2 == 0)
    return registry


@settings(max_examples=250, deadline=None)
@given(
    formula=closed_formulas(),
    values=st.lists(
        st.integers(min_value=0, max_value=9), min_size=0, max_size=6
    ),
)
def test_evaluator_truth_matches_reference(formula, values):
    registry = _registry()
    evaluator = Evaluator(registry)
    domain = _pool(values)
    assert (
        evaluator.evaluate(formula, domain).value
        == reference_eval(formula, domain, {}, registry)
    )


@settings(max_examples=150, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=9), min_size=1, max_size=6
    )
)
def test_false_universal_yields_named_culprits(values):
    """Whenever 'forall x: is_even(x)' is false, exactly the odd
    contexts are named by violation links."""
    registry = _registry()
    evaluator = Evaluator(registry)
    domain = _pool(values)
    formula = Universal("x", "location", Predicate("is_even", (Var("x"),)))
    result = evaluator.evaluate(formula, domain)
    odd = {c for c in domain("location") if int(c.value) % 2 == 1}
    if odd:
        assert not result.value
        named = {c for link in result.vio_links for c in link.contexts()}
        assert named == odd
    else:
        assert result.value
