"""Unit and property tests for the incremental checking engine.

The key property: on any stream, the incremental fast path detects
exactly the violations (involving the new context) that a full
re-evaluation would.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.ast import Constraint, Implies, Not, exists, forall, pred
from repro.constraints.builtins import standard_registry
from repro.constraints.checker import ConstraintChecker
from repro.constraints.incremental import analyze_prefix
from repro.constraints.parser import parse_constraint
from repro.core.context import Context


def velocity_constraint(bound=1.5, gap=1.5):
    return parse_constraint(
        "velocity",
        f"forall l1 in location, forall l2 in location : "
        f"(same_subject(l1, l2) and before(l1, l2) "
        f"and within_time(l1, l2, {gap})) "
        f"implies velocity_le(l1, l2, {bound})",
    )


def provenance_constraint():
    return parse_constraint(
        "provenance",
        "forall r in location : far(r) implies "
        "(exists s in location : before(s, r))",
    )


class TestAnalyzePrefix:
    def test_prefix_universal_quantifier_free(self):
        analysis = analyze_prefix(velocity_constraint())
        assert analysis.is_prefix_universal
        assert analysis.vars_types == (
            ("l1", "location"),
            ("l2", "location"),
        )

    def test_positive_existential_body_is_fast_path(self):
        analysis = analyze_prefix(provenance_constraint())
        assert analysis.is_prefix_universal

    def test_negated_existential_falls_back(self):
        constraint = Constraint(
            "neg-exists",
            forall(
                "x",
                "location",
                Not(exists("y", "location", pred("before", "x", "y"))),
            ),
        )
        assert not analyze_prefix(constraint).is_prefix_universal

    def test_existential_in_premise_falls_back(self):
        constraint = Constraint(
            "exists-premise",
            forall(
                "x",
                "location",
                Implies(
                    exists("y", "location", pred("before", "y", "x")),
                    pred("true"),
                ),
            ),
        )
        assert not analyze_prefix(constraint).is_prefix_universal

    def test_nested_universal_falls_back(self):
        constraint = Constraint(
            "nested-forall",
            forall(
                "x",
                "location",
                Implies(
                    pred("true"),
                    forall("y", "location", pred("before", "x", "y")),
                ),
            ),
        )
        assert not analyze_prefix(constraint).is_prefix_universal

    def test_no_prefix_falls_back(self):
        constraint = Constraint(
            "pure-exists", exists("x", "location", pred("true"))
        )
        assert not analyze_prefix(constraint).is_prefix_universal


def _ctx(index, x, subject="p"):
    return Context(
        ctx_id=f"s{index:03d}",
        ctx_type="location",
        subject=subject,
        value=(float(x), 0.0),
        timestamp=float(index),
    )


def _detect_stream(checker, contexts):
    """Feed a stream; return [(ctx_id, sorted violation sets)] per step."""
    seen = []
    trace = []
    for ctx in contexts:
        incs = checker.detect(ctx, list(seen), now=ctx.timestamp)
        trace.append(
            (
                ctx.ctx_id,
                sorted(
                    sorted(c.ctx_id for c in inc.contexts) for inc in incs
                ),
            )
        )
        seen.append(ctx)
    return trace


class TestEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=10))
    def test_incremental_equals_full_on_velocity(self, xs):
        contexts = [_ctx(i, x) for i, x in enumerate(xs)]
        fast = ConstraintChecker([velocity_constraint()], incremental=True)
        slow = ConstraintChecker([velocity_constraint()], incremental=False)
        assert _detect_stream(fast, contexts) == _detect_stream(slow, contexts)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.sampled_from(["p", "q"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_incremental_equals_full_multi_subject(self, specs):
        contexts = [_ctx(i, x, subject=s) for i, (x, s) in enumerate(specs)]
        fast = ConstraintChecker([velocity_constraint()], incremental=True)
        slow = ConstraintChecker([velocity_constraint()], incremental=False)
        assert _detect_stream(fast, contexts) == _detect_stream(slow, contexts)


class TestExistentialFastPath:
    def _far_registry(self):
        registry = standard_registry()
        registry.register("far", lambda c: c.position[0] > 5.0)
        return registry

    def test_unprovenanced_context_detected(self):
        checker = ConstraintChecker(
            [provenance_constraint()], registry=self._far_registry()
        )
        lone = _ctx(0, 9.0)
        incs = checker.detect(lone, [], now=0.0)
        assert [sorted(c.ctx_id for c in i.contexts) for i in incs] == [
            ["s000"]
        ]

    def test_provenanced_context_clean(self):
        checker = ConstraintChecker(
            [provenance_constraint()], registry=self._far_registry()
        )
        early = _ctx(0, 1.0)
        late = _ctx(1, 9.0)
        assert checker.detect(early, [], now=0.0) == []
        assert checker.detect(late, [early], now=1.0) == []

    def test_matches_full_evaluation(self):
        fast = ConstraintChecker(
            [provenance_constraint()],
            registry=self._far_registry(),
            incremental=True,
        )
        slow = ConstraintChecker(
            [provenance_constraint()],
            registry=self._far_registry(),
            incremental=False,
        )
        contexts = [_ctx(0, 9.0), _ctx(1, 2.0), _ctx(2, 8.0)]
        assert _detect_stream(fast, contexts) == _detect_stream(slow, contexts)


class TestBindingEnumeration:
    def test_self_pairs_included(self):
        """The new context may occupy several quantified positions."""
        constraint = parse_constraint(
            "self-incompatible",
            "forall a in location, forall b in location : "
            "distinct(a, b) or before(a, b)",
        )
        checker = ConstraintChecker([constraint])
        ctx = _ctx(0, 0.0)
        # (ctx, ctx) violates: not distinct and not strictly before.
        incs = checker.detect(ctx, [], now=0.0)
        assert [sorted(c.ctx_id for c in i.contexts) for i in incs] == [
            ["s000"]
        ]

    def test_no_duplicate_detection_across_positions(self):
        constraint = velocity_constraint()
        checker = ConstraintChecker([constraint])
        a = _ctx(0, 0.0)
        b = _ctx(1, 9.0)
        incs = checker.detect(b, [a], now=1.0)
        assert len(incs) == 1
