"""Unit tests for the constraint DSL parser."""

import pytest

from repro.constraints.ast import (
    And,
    Existential,
    Implies,
    Literal,
    Not,
    Or,
    Predicate,
    Universal,
    Var,
)
from repro.constraints.parser import ParseError, parse_constraint, parse_formula


class TestAtoms:
    def test_nullary_predicate(self):
        assert parse_formula("true()") == Predicate("true", ())

    def test_predicate_with_terms(self):
        f = parse_formula("velocity_le(l1, l2, 1.5)")
        assert f == Predicate(
            "velocity_le", (Var("l1"), Var("l2"), Literal(1.5))
        )

    def test_integer_and_float_literals(self):
        f = parse_formula("f(x, 3, 2.5, -1, 1e3)")
        assert f.args[1] == Literal(3)
        assert isinstance(f.args[1].value, int)
        assert f.args[2] == Literal(2.5)
        assert f.args[3] == Literal(-1)
        assert f.args[4] == Literal(1000.0)

    def test_string_literals(self):
        f = parse_formula("attr_eq(x, 'zone', \"dock\")")
        assert f.args[1] == Literal("zone")
        assert f.args[2] == Literal("dock")


class TestConnectives:
    def test_precedence_and_binds_tighter_than_or(self):
        f = parse_formula("a() or b() and c()")
        assert isinstance(f, Or)
        assert isinstance(f.right, And)

    def test_implies_binds_weakest(self):
        f = parse_formula("a() and b() implies c() or d()")
        assert isinstance(f, Implies)
        assert isinstance(f.left, And)
        assert isinstance(f.right, Or)

    def test_not_binds_tightest(self):
        f = parse_formula("not a() and b()")
        assert isinstance(f, And)
        assert isinstance(f.left, Not)

    def test_double_negation(self):
        f = parse_formula("not not a()")
        assert isinstance(f, Not)
        assert isinstance(f.operand, Not)

    def test_parentheses_override(self):
        f = parse_formula("not (a() and b())")
        assert isinstance(f, Not)
        assert isinstance(f.operand, And)

    def test_implies_right_associative(self):
        f = parse_formula("a() implies b() implies c()")
        assert isinstance(f, Implies)
        assert isinstance(f.right, Implies)


class TestQuantifiers:
    def test_forall(self):
        f = parse_formula("forall l in location : ok(l)")
        assert f == Universal("l", "location", Predicate("ok", (Var("l"),)))

    def test_exists(self):
        f = parse_formula("exists r in rfid_read : is_shelf(r)")
        assert isinstance(f, Existential)

    def test_comma_chained_quantifiers(self):
        f = parse_formula(
            "forall a in t1, forall b in t2 : rel(a, b)"
        )
        assert isinstance(f, Universal)
        assert isinstance(f.body, Universal)
        assert f.body.ctx_type == "t2"

    def test_quantifier_body_extends_right(self):
        f = parse_formula("forall a in t : p(a) implies q(a)")
        assert isinstance(f, Universal)
        assert isinstance(f.body, Implies)

    def test_nested_quantifier_in_consequent(self):
        f = parse_formula(
            "forall a in t : p(a) implies (exists b in t : q(a, b))"
        )
        assert isinstance(f.body.right, Existential)

    def test_comma_requires_quantifier(self):
        with pytest.raises(ParseError):
            parse_formula("forall a in t, p(a)")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "f(",
            "f(x))",
            "forall in t : f(x)",
            "forall a t : f(a)",
            "f(x) g(x)",
            "@bad",
            "f(,)",
        ],
    )
    def test_bad_input_raises(self, text):
        with pytest.raises(ParseError):
            parse_formula(text)

    def test_error_mentions_offset(self):
        with pytest.raises(ParseError, match="offset"):
            parse_formula("forall a in t :")


class TestParseConstraint:
    def test_builds_named_closed_constraint(self):
        c = parse_constraint(
            "velocity",
            "forall l1 in location, forall l2 in location : "
            "velocity_le(l1, l2, 1.5)",
            description="running example",
        )
        assert c.name == "velocity"
        assert c.relevant_types() == {"location"}
        assert c.description == "running example"

    def test_open_formula_rejected(self):
        with pytest.raises(ValueError, match="free variables"):
            parse_constraint("bad", "ok(l)")

    def test_roundtrip_with_app_constraints(self):
        """The application modules' DSL strings must all parse."""
        from repro.apps.call_forwarding import CallForwardingApp
        from repro.apps.rfid_anomalies import RFIDAnomaliesApp

        assert len(CallForwardingApp().build_constraints()) == 5
        assert len(RFIDAnomaliesApp().build_constraints()) == 5
