"""Bounded-memory regression: a 50k-context stream must not leak.

The historical ``Middleware._used_ids`` was an unbounded set -- one
entry per context ever used, forever.  The manager now counts distinct
uses through a :class:`repro.runtime.scheduler.BoundedIdSet`; this
test streams 50k contexts and asserts the retained-id structure stays
bounded while the distinct-use count stays exact.
"""

from __future__ import annotations

from repro.constraints.checker import ConstraintChecker
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.bus import ContextDelivered
from repro.middleware.manager import Middleware

N_CONTEXTS = 50_000


def stream(n: int):
    for i in range(n):
        ts = float(i)
        yield Context(
            ctx_id=f"c{i}",
            ctx_type="reading",
            subject=f"s{i % 7}",
            value=i,
            timestamp=ts,
            lifespan=8.0,  # keeps the pool small across 50k arrivals
        )


class TestBoundedUsedIds:
    def test_50k_stream_keeps_id_memory_bounded(self):
        middleware = Middleware(
            ConstraintChecker([]), make_strategy("drop-bad"), use_window=4
        )
        delivered = 0

        def count(_event):
            nonlocal delivered
            delivered += 1

        middleware.bus.subscribe(ContextDelivered, count)
        middleware.receive_all(stream(N_CONTEXTS))

        # With no constraints nothing is ever discarded: every used
        # context is delivered, and the distinct-use count must match.
        assert delivered > 0
        assert middleware.used_count() == delivered
        # The retained-id structure is the bounded set, not one entry
        # per context ever seen.
        assert len(middleware._used_ids) <= middleware._used_ids.maxlen
        assert middleware._used_ids.maxlen < N_CONTEXTS

    def test_double_use_still_counts_once(self):
        middleware = Middleware(
            ConstraintChecker([]), make_strategy("drop-bad"), use_window=2
        )
        ctx = Context(
            ctx_id="x", ctx_type="reading", subject="s", value=0, timestamp=0.0
        )
        middleware.receive(ctx)
        middleware.use(ctx)
        middleware.use(ctx)
        assert middleware.used_count() == 1
