"""Asynchronous checking mode: the snapshot-window ingress end to end.

Three layers:

* unit semantics of :class:`~repro.runtime.snapshot.SnapshotIngress`
  (watermark releases, stale/duplicate refusals, forced releases,
  checkpoint round-trip);
* the driver behind the ingress -- a perturbed stream resolves exactly
  like its timestamp-sorted original as long as nothing is refused,
  because the ingress's released stream *is* the sorted stream;
* mode-off equivalence -- constructing the runtime with
  ``async_check=None`` (the default everywhere) is byte-identical to
  the recorded goldens; the full 220-stream pin lives in
  ``test_golden_equivalence.py``, this spot-checks the explicit kwarg.
"""

from __future__ import annotations

import json
import pathlib
import random

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.bus import ContextDuplicate, ContextStale
from repro.middleware.manager import Middleware
from repro.runtime import AsyncCheckConfig, SnapshotIngress
from repro.sensing.perturb import delay_stream, duplicate_stream

from . import _streams

pytestmark = pytest.mark.async_check

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


def ctx(ctx_id: str, ts: float, lifespan: float = float("inf")) -> Context:
    return Context(
        ctx_id=ctx_id,
        ctx_type="loc",
        subject="s",
        value=0.0,
        timestamp=ts,
        lifespan=lifespan,
    )


class TestAsyncCheckConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AsyncCheckConfig(max_lag=-1.0)
        with pytest.raises(ValueError):
            AsyncCheckConfig(max_buffer=0)
        with pytest.raises(ValueError):
            AsyncCheckConfig(dedup_window=0)

    def test_document_round_trip(self):
        config = AsyncCheckConfig(max_lag=3.5, max_buffer=7, dedup_window=11)
        assert AsyncCheckConfig.from_document(config.to_document()) == config


class TestSnapshotIngress:
    def test_holds_until_watermark_then_releases_sorted(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=5.0))
        assert ingress.offer(ctx("a", 3.0)).released == ()
        assert ingress.offer(ctx("b", 1.0)).released == ()
        # max_ts 7 -> watermark 2: only the ts=1 context is releasable.
        out = ingress.offer(ctx("c", 7.0))
        assert [c.ctx_id for c in out.released] == ["b"]
        # Advancing to 9 releases ts=3; ts=7 and ts=9 stay buffered.
        out = ingress.offer(ctx("d", 9.0))
        assert [c.ctx_id for c in out.released] == ["a"]
        assert len(ingress) == 2
        assert [c.ctx_id for c in ingress.flush()] == ["c", "d"]
        assert len(ingress) == 0

    def test_stale_below_cursor_refused(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=1.0))
        ingress.offer(ctx("a", 0.0))
        ingress.offer(ctx("b", 10.0))  # releases a; cursor = 0? no: a<=9
        # cursor is now 0.0 (a released); a ts older than that is stale.
        outcome = ingress.offer(ctx("late", -1.0))
        assert outcome.dropped == "stale"
        assert ingress.stale == 1

    def test_below_watermark_at_or_after_cursor_still_accepted(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=2.0))
        ingress.offer(ctx("a", 0.0))
        ingress.offer(ctx("b", 10.0))  # watermark 8: releases a
        # ts=5 is far below the watermark but after the cursor (0.0):
        # it must be accepted and released immediately, in order.
        outcome = ingress.offer(ctx("mid", 5.0))
        assert outcome.dropped is None
        assert [c.ctx_id for c in outcome.released] == ["mid"]

    def test_duplicate_refused(self):
        ingress = SnapshotIngress(AsyncCheckConfig())
        ingress.offer(ctx("a", 1.0))
        outcome = ingress.offer(ctx("a", 1.0))
        assert outcome.dropped == "duplicate"
        assert ingress.duplicates == 1

    def test_forced_release_bounds_buffer(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=100.0, max_buffer=3))
        released = []
        for i in range(6):
            released += ingress.offer(ctx(f"c{i}", float(i))).released
        # Nothing reached the watermark, but the buffer bound forced
        # the oldest out -- in timestamp order.
        assert [c.ctx_id for c in released] == ["c0", "c1", "c2"]
        assert ingress.forced == 3
        assert len(ingress) == 3

    def test_released_stream_is_always_sorted(self):
        rng = random.Random(11)
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=4.0, max_buffer=8))
        stream = [ctx(f"c{i}", t) for i, t in enumerate(rng.sample(range(100), 60))]
        out = []
        for c in stream:
            out += ingress.offer(c).released
        out += ingress.flush()
        stamps = [c.timestamp for c in out]
        assert stamps == sorted(stamps)
        refused = ingress.stale + ingress.duplicates
        assert len(out) + refused == len(stream)

    def test_snapshot_restore_round_trip(self):
        config = AsyncCheckConfig(max_lag=5.0)
        ingress = SnapshotIngress(config)
        for i, t in enumerate((3.0, 1.0, 9.0)):
            ingress.offer(ctx(f"c{i}", t))
        state = ingress.snapshot()
        clone = SnapshotIngress(config)
        clone.restore(state)
        assert clone.stats() == ingress.stats()
        assert [c.ctx_id for c in clone.flush()] == [
            c.ctx_id for c in ingress.flush()
        ]
        # The dedup memory survives too.
        assert clone.offer(ctx("c0", 99.0)).dropped == "duplicate"


def middleware_run(constraints, stream, *, params, async_check=None):
    middleware = Middleware(
        ConstraintChecker(constraints),
        make_strategy(params["strategy"]),
        use_window=params["use_window"],
        use_delay=params["use_delay"],
        async_check=async_check,
    )
    from repro.middleware.bus import ContextDelivered, ContextDiscarded

    delivered, discarded = [], []
    middleware.bus.subscribe(
        ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
    )
    middleware.receive_all(stream)
    return delivered, discarded


class TestDriverBehindIngress:
    @pytest.mark.parametrize("seed", [1, 5, 17, 42])
    def test_delayed_stream_resolves_like_sorted_original(self, seed):
        """With a window covering the worst delay, a delay-perturbed
        stream produces the decisions of its sorted original: the
        ingress's released stream IS the sorted stream."""
        constraints, stream, params = _streams.trial_inputs(seed)
        rng = random.Random(seed ^ 0xDE1A)
        perturbed = delay_stream(stream, rng, max_delay=4.0)
        want = middleware_run(constraints, stream, params=params)
        got = middleware_run(
            constraints,
            perturbed,
            params=params,
            async_check=AsyncCheckConfig(max_lag=10.0),
        )
        assert got == want

    def test_duplicates_refused_and_decisions_preserved(self):
        constraints, stream, params = _streams.trial_inputs(3)
        rng = random.Random(99)
        perturbed = duplicate_stream(stream, rng, p=0.3)
        assert len(perturbed) > len(stream)
        middleware = Middleware(
            ConstraintChecker(constraints),
            make_strategy(params["strategy"]),
            use_window=params["use_window"],
            use_delay=params["use_delay"],
            async_check=AsyncCheckConfig(max_lag=10.0),
        )
        refusals = []
        middleware.bus.subscribe(
            ContextDuplicate, lambda e: refusals.append(e.context.ctx_id)
        )
        middleware.receive_all(perturbed)
        assert len(refusals) == len(perturbed) - len(stream)
        want = middleware_run(constraints, stream, params=params)
        got = middleware_run(
            constraints,
            perturbed,
            params=params,
            async_check=AsyncCheckConfig(max_lag=10.0),
        )
        assert got == want

    def test_stale_arrival_publishes_event_not_crash(self):
        constraints, _, params = _streams.trial_inputs(0)
        middleware = Middleware(
            ConstraintChecker(constraints),
            make_strategy("drop-latest"),
            use_window=2,
            async_check=AsyncCheckConfig(max_lag=1.0),
        )
        stale = []
        middleware.bus.subscribe(
            ContextStale, lambda e: stale.append(e.context.ctx_id)
        )
        middleware.receive(ctx("a", 0.0))
        middleware.receive(ctx("b", 10.0))  # watermark 9 -> a released
        middleware.receive(ctx("ghost", -5.0))  # behind the cursor
        assert stale == ["ghost"]

    def test_ingress_stats_exposed_by_middleware(self):
        middleware = Middleware(
            ConstraintChecker([]),
            make_strategy("drop-latest"),
            use_window=1,
            async_check=AsyncCheckConfig(max_lag=2.0),
        )
        assert middleware.ingress is not None
        middleware.receive(ctx("a", 1.0))
        assert middleware.ingress.stats()["buffered"] == 1.0
        middleware.flush_uses()
        assert middleware.ingress.stats()["buffered"] == 0.0

    def test_mode_off_has_no_ingress(self):
        middleware = Middleware(
            ConstraintChecker([]), make_strategy("drop-latest"), use_window=1
        )
        assert middleware.ingress is None


class TestModeOffGoldenEquivalence:
    """``async_check=None`` must stay byte-identical to the goldens."""

    @pytest.mark.parametrize("seed", [0, 7, 33, 101, 219])
    def test_explicit_none_matches_golden(self, seed):
        generated = json.loads(
            (GOLDEN_DIR / "generated_streams.json").read_text()
        )
        constraints, stream, params = _streams.trial_inputs(seed)
        delivered, discarded = middleware_run(
            constraints, stream, params=params, async_check=None
        )
        assert (
            _streams.signature(delivered, discarded)
            == generated["trials"][seed]["signature"]
        )
