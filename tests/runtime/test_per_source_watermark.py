"""Per-source watermarks in the snapshot-window ingress.

PR 8's ingress derives its watermark from the *global* maximum
timestamp, so one fast source races the watermark ahead and a
consistently slow source sees its arrivals refused as stale.  The
``per_source`` mode takes the watermark from the slowest tracked
source instead, with an arrival-count idle bound so a source that
stalls outright is evicted rather than freezing the window forever.

Covered here:

* a stalled source no longer stalls the watermark -- releases resume
  after eviction and the counter records it;
* a slow-but-steady source is protected: zero stale refusals where
  the global watermark drops every one of its arrivals;
* the released stream stays timestamp-sorted (the ledger-replay
  invariant) in per-source mode;
* config document round-trip with the new fields, and checkpoint
  restore of a pre-per-source snapshot (missing keys default).
"""

from __future__ import annotations

import pytest

from repro.core.context import Context
from repro.runtime import AsyncCheckConfig, SnapshotIngress

pytestmark = pytest.mark.async_check


def ctx(ctx_id: str, ts: float, source: str) -> Context:
    return Context(
        ctx_id=ctx_id,
        ctx_type="loc",
        subject="s",
        value=0.0,
        timestamp=ts,
        source=source,
    )


class TestStalledSource:
    def test_stalled_source_is_evicted_and_releases_resume(self):
        config = AsyncCheckConfig(
            max_lag=2.0, per_source=True, source_idle_arrivals=3
        )
        ingress = SnapshotIngress(config)
        # Source b speaks once, then goes silent.
        assert ingress.offer(ctx("b0", 0.5, "b")).released == ()
        released = []
        release_points = []
        for i in range(1, 9):
            out = ingress.offer(ctx(f"a{i}", float(i), "a")).released
            released += out
            if out:
                release_points.append(i)
        # While b is tracked the watermark is pinned at 0.5 - 2.0 and
        # nothing can release; after 3 arrivals without b it is evicted
        # and the watermark jumps to a's maximum minus the lag.
        assert ingress.evicted_sources == 1
        assert release_points, "releases never resumed after the stall"
        assert min(release_points) > 3
        stamps = [c.timestamp for c in released]
        assert stamps == sorted(stamps)
        # b's lone context is released in order, not lost.
        assert released[0].ctx_id == "b0"
        assert ingress.stats()["evicted_sources"] == 1.0
        assert ingress.stats()["tracked_sources"] == 1.0

    def test_without_per_source_no_stall_in_the_first_place(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=2.0))
        ingress.offer(ctx("b0", 0.5, "b"))
        released = []
        for i in range(1, 6):
            released += ingress.offer(ctx(f"a{i}", float(i), "a")).released
        # Global mode never waited on b: watermark follows max ts.
        assert [c.ctx_id for c in released] == ["b0", "a1", "a2", "a3"]
        assert ingress.evicted_sources == 0
        assert ingress.stats()["tracked_sources"] == 0.0

    def test_returning_source_is_reinstated(self):
        config = AsyncCheckConfig(
            max_lag=2.0, per_source=True, source_idle_arrivals=2
        )
        ingress = SnapshotIngress(config)
        ingress.offer(ctx("b0", 0.5, "b"))
        for i in range(1, 6):
            ingress.offer(ctx(f"a{i}", float(i), "a"))
        assert ingress.evicted_sources == 1
        # b comes back with a fresh timestamp: tracked again, and the
        # watermark is once more the minimum over both sources.
        ingress.offer(ctx("b1", 4.0, "b"))
        assert ingress.stats()["tracked_sources"] == 2.0
        assert ingress.watermark == pytest.approx(4.0 - 2.0)


class TestSlowButSteadySource:
    @staticmethod
    def interleaved():
        """a leads b by 4 simulated seconds, strictly alternating."""
        stream = []
        for i in range(8):
            stream.append(ctx(f"a{i}", 10.0 + 2.0 * i, "a"))
            stream.append(ctx(f"b{i}", 6.0 + 2.0 * i, "b"))
        return stream

    def test_global_watermark_drops_the_laggard(self):
        ingress = SnapshotIngress(AsyncCheckConfig(max_lag=2.0))
        for c in self.interleaved():
            ingress.offer(c)
        assert ingress.stale > 0

    def test_per_source_watermark_keeps_every_arrival(self):
        config = AsyncCheckConfig(max_lag=2.0, per_source=True)
        ingress = SnapshotIngress(config)
        released = []
        for c in self.interleaved():
            outcome = ingress.offer(c)
            assert outcome.dropped is None
            released += outcome.released
        released += ingress.flush()
        assert ingress.stale == 0
        assert len(released) == 16
        stamps = [c.timestamp for c in released]
        assert stamps == sorted(stamps)

    def test_per_source_watermark_never_exceeds_global(self):
        config = AsyncCheckConfig(max_lag=2.0, per_source=True)
        ingress = SnapshotIngress(config)
        for c in self.interleaved():
            ingress.offer(c)
            global_mark = ingress._max_ts - config.max_lag
            assert ingress.watermark <= global_mark


class TestConfigAndCheckpoint:
    def test_document_round_trip_with_per_source_fields(self):
        config = AsyncCheckConfig(
            max_lag=3.0, per_source=True, source_idle_arrivals=7
        )
        assert AsyncCheckConfig.from_document(config.to_document()) == config

    def test_old_document_defaults_off(self):
        config = AsyncCheckConfig.from_document({"max_lag": 4.0})
        assert config.per_source is False
        assert config.source_idle_arrivals == 64

    def test_source_idle_arrivals_validated(self):
        with pytest.raises(ValueError):
            AsyncCheckConfig(source_idle_arrivals=0)

    def test_snapshot_round_trip_carries_source_state(self):
        config = AsyncCheckConfig(max_lag=2.0, per_source=True)
        ingress = SnapshotIngress(config)
        ingress.offer(ctx("a0", 1.0, "a"))
        ingress.offer(ctx("b0", 0.5, "b"))
        clone = SnapshotIngress(config)
        clone.restore(ingress.snapshot())
        assert clone.stats() == ingress.stats()
        assert clone.watermark == ingress.watermark
        assert [c.ctx_id for c in clone.flush()] == [
            c.ctx_id for c in ingress.flush()
        ]

    def test_restore_of_pre_per_source_checkpoint(self):
        """Old checkpoints lack the per-source keys; restore defaults
        them instead of raising."""
        config = AsyncCheckConfig(max_lag=2.0, per_source=True)
        donor = SnapshotIngress(config)
        donor.offer(ctx("a0", 1.0, "a"))
        state = donor.snapshot()
        for key in ("arrivals", "source_max", "source_seen_at", "evicted_sources"):
            del state[key]
        ingress = SnapshotIngress(config)
        ingress.restore(state)
        assert ingress.evicted_sources == 0
        assert ingress.stats()["tracked_sources"] == 0.0
        # The restored ingress keeps working in per-source mode.
        outcome = ingress.offer(ctx("a1", 5.0, "a"))
        assert outcome.dropped is None
