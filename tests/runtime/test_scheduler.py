"""Unit tests for the use scheduler and the bounded id set."""

from __future__ import annotations

import pytest

from repro.core.context import Context
from repro.runtime.scheduler import BoundedIdSet, ScheduledUse, UseScheduler


def ctx(ctx_id: str, ts: float = 0.0) -> Context:
    return Context(
        ctx_id=ctx_id, ctx_type="t", subject="s", value=0, timestamp=ts
    )


class TestCountWindow:
    def test_entry_due_after_window_arrivals(self):
        scheduler = UseScheduler(use_window=2)
        scheduler.schedule(ctx("a"), 0, 0.0)
        assert scheduler.pop_due(0.0) is None
        scheduler.schedule(ctx("b"), 0, 1.0)
        assert scheduler.pop_due(1.0) is None
        scheduler.schedule(ctx("c"), 0, 2.0)
        entry = scheduler.pop_due(2.0)
        assert entry is not None and entry.ctx.ctx_id == "a"
        assert scheduler.pop_due(2.0) is None

    def test_zero_window_due_immediately(self):
        scheduler = UseScheduler(use_window=0)
        scheduler.schedule(ctx("a"), 0, 0.0)
        entry = scheduler.pop_due(0.0)
        assert entry is not None and entry.ctx.ctx_id == "a"

    def test_fifo_order_and_payload(self):
        scheduler = UseScheduler(use_window=0)
        scheduler.schedule(ctx("a"), 3, 0.0)
        scheduler.schedule(ctx("b"), 7, 0.0)
        assert [(e.ctx.ctx_id, e.payload) for e in iter(lambda: scheduler.pop_due(0.0), None)] == [
            ("a", 3),
            ("b", 7),
        ]


class TestTimeWindow:
    def test_entry_due_after_delay(self):
        scheduler = UseScheduler(use_delay=5.0)
        scheduler.schedule(ctx("a"), 0, 10.0)
        assert scheduler.pop_due(14.9) is None
        entry = scheduler.pop_due(15.0)
        assert entry is not None and entry.ctx.ctx_id == "a"

    def test_next_due_at(self):
        scheduler = UseScheduler(use_delay=5.0)
        assert scheduler.next_due_at() == float("inf")
        scheduler.schedule(ctx("a"), 0, 10.0)
        assert scheduler.next_due_at() == 15.0


class TestDiscard:
    def test_discard_unschedules(self):
        scheduler = UseScheduler(use_window=0)
        scheduler.schedule(ctx("a"), 0, 0.0)
        scheduler.schedule(ctx("b"), 0, 0.0)
        assert scheduler.discard("a") is True
        assert scheduler.discard("a") is False  # already gone
        assert scheduler.discard("zz") is False  # never scheduled
        entry = scheduler.pop_due(0.0)
        assert entry is not None and entry.ctx.ctx_id == "b"
        assert scheduler.pop_due(0.0) is None

    def test_len_counts_live_entries_only(self):
        scheduler = UseScheduler(use_window=4)
        for i in range(10):
            scheduler.schedule(ctx(f"c{i}"), 0, 0.0)
        for i in range(4):
            scheduler.discard(f"c{i}")
        assert len(scheduler) == 6
        assert [c.ctx_id for c in scheduler.pending()] == [
            f"c{i}" for i in range(4, 10)
        ]

    def test_compaction_bounds_queue_slots(self):
        scheduler = UseScheduler(use_window=10**9)
        for i in range(1000):
            scheduler.schedule(ctx(f"c{i}"), 0, 0.0)
        for i in range(999):
            scheduler.discard(f"c{i}")
        # Tombstones were compacted away: the deque cannot keep one
        # dead slot per discard.
        assert scheduler.queue_slots() < 200
        assert len(scheduler) == 1

    def test_pop_next_flushes_in_order(self):
        scheduler = UseScheduler(use_window=10**9)
        scheduler.schedule(ctx("a"), 0, 0.0)
        scheduler.schedule(ctx("b"), 0, 0.0)
        scheduler.discard("a")
        entry = scheduler.pop_next()
        assert entry is not None and entry.ctx.ctx_id == "b"
        assert scheduler.pop_next() is None


class TestValidationAndSnapshot:
    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            UseScheduler(use_window=-1)
        with pytest.raises(ValueError):
            UseScheduler(use_delay=-0.5)

    def test_snapshot_restore_round_trip(self):
        scheduler = UseScheduler(use_window=3)
        for i in range(5):
            scheduler.schedule(ctx(f"c{i}"), i, float(i))
        scheduler.discard("c1")
        state = scheduler.snapshot()

        clone = UseScheduler(use_window=3)
        clone.restore(state)
        assert clone.arrivals == scheduler.arrivals
        assert [c.ctx_id for c in clone.pending()] == ["c0", "c2", "c3", "c4"]
        # Window arithmetic survives: c0 was arrival 1 of 5, window 3.
        entry = clone.pop_due(0.0)
        assert entry is not None and entry.ctx.ctx_id == "c0"
        assert entry.payload == 0 and entry.arrived_at == 0.0

    def test_snapshot_excludes_tombstones(self):
        scheduler = UseScheduler(use_window=3)
        scheduler.schedule(ctx("a"), 0, 0.0)
        scheduler.schedule(ctx("b"), 0, 0.0)
        scheduler.discard("a")
        entries = scheduler.snapshot()["entries"]
        assert [e[0].ctx_id for e in entries] == ["b"]


class TestScheduledUse:
    def test_slots_hold_bookkeeping(self):
        entry = ScheduledUse(ctx("a"), 2, 7, 1.5)
        assert (entry.payload, entry.arrival_index, entry.arrived_at) == (2, 7, 1.5)
        assert entry.discarded is False


class TestBoundedIdSet:
    def test_add_reports_novelty(self):
        ids = BoundedIdSet(maxlen=10)
        assert ids.add("a") is True
        assert ids.add("a") is False
        assert "a" in ids and len(ids) == 1

    def test_eviction_is_fifo_and_bounded(self):
        ids = BoundedIdSet(maxlen=3)
        for name in ("a", "b", "c", "d"):
            ids.add(name)
        assert len(ids) == 3
        assert "a" not in ids
        assert all(name in ids for name in ("b", "c", "d"))

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            BoundedIdSet(maxlen=0)
