"""Deterministic stream/constraint generators for the runtime goldens.

Shared by the one-off golden recorder (``record_goldens.py``, run against
the pre-refactor seed tree) and the permanent equivalence suite
(``test_golden_equivalence.py``).  Everything here must stay byte-stable:
the goldens were recorded from these exact generators, so changing a
seed, a bound or a distribution invalidates them.

The trial matrix deliberately covers the whole window/expiry space the
refactor must preserve:

* count-based windows 0..6 (including the zero-window degeneration of
  drop-bad into drop-latest, Section 5.3);
* time-based windows (``use_delay`` 0.0/2.0/6.0);
* finite lifespans (5s/12s) interleaved with immortal contexts, so
  expiry sweeps fire mid-stream;
* all four deterministic strategies.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, List, Optional, Tuple

from repro.constraints.parser import parse_constraint
from repro.core.context import Context

TYPES = ("loc", "badge", "rfid", "temp", "free1", "free2")
SUBJECTS = ("s1", "s2", "s3")
STRATEGIES = ("drop-latest", "drop-all", "drop-bad", "opt-r")
LIFESPANS = (float("inf"), 5.0, 12.0)

#: Number of generated-stream trials (the acceptance floor is 200).
N_TRIALS = 220


def make_constraints(rng: random.Random):
    """Two independent scope groups with randomized tightness."""
    constraints = []
    for group, (t1, t2) in enumerate((("loc", "badge"), ("rfid", "temp"))):
        for i in range(rng.randint(1, 2)):
            bound = rng.choice((3.0, 5.0))
            constraints.append(
                parse_constraint(
                    f"g{group}c{i}",
                    f"forall a in {t1}, forall b in {t2} : "
                    f"same_subject(a, b) implies within_time(a, b, {bound})",
                )
            )
    return constraints


def make_stream(rng: random.Random, n: int = 40) -> List[Context]:
    """A timestamp-sorted stream mixing constrained/unconstrained types."""
    contexts = []
    t = 0.0
    for i in range(n):
        t += rng.random() * 2.0
        contexts.append(
            Context(
                ctx_id=f"c{i}",
                ctx_type=rng.choice(TYPES),
                subject=rng.choice(SUBJECTS),
                value=float(i),
                timestamp=t,
                lifespan=rng.choice(LIFESPANS),
                corrupted=rng.random() < 0.15,
            )
        )
    return contexts


def trial_params(seed: int) -> Dict[str, object]:
    """The (strategy, window) configuration of generated trial ``seed``."""
    rng = random.Random(seed * 7919 + 13)
    strategy = STRATEGIES[seed % len(STRATEGIES)]
    use_delay: Optional[float]
    if seed % 3 == 2:
        use_window, use_delay = 4, rng.choice((0.0, 2.0, 6.0))
    else:
        use_window, use_delay = seed % 7, None
    return {
        "seed": seed,
        "strategy": strategy,
        "use_window": use_window,
        "use_delay": use_delay,
    }


def trial_inputs(seed: int) -> Tuple[list, List[Context], Dict[str, object]]:
    """(constraints, stream, params) of generated trial ``seed``."""
    rng = random.Random(seed)
    return make_constraints(rng), make_stream(rng), trial_params(seed)


def signature(delivered_ids: List[str], discarded_ids: List[str]) -> str:
    """Canonical, order-sensitive digest of one run's decisions."""
    blob = json.dumps(
        {"delivered": delivered_ids, "discarded": discarded_ids},
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- application streams ------------------------------------------------------

#: (app key, strategy, use_window, workload kwargs).  Streams are kept
#: small so the full mode x kernels matrix stays test-suite friendly.
APP_CASES = (
    ("call-forwarding", "drop-bad", 10, {"duration": 120.0}),
    ("rfid", "drop-bad", 20, {"items": 6}),
    ("smart-phone", "drop-bad", 8, {"days": 1}),
)

APP_ERR_RATE = 0.3
APP_SEED = 5
APP_SHARDS = 3


def build_app(app_key: str):
    from repro.apps import CallForwardingApp, RFIDAnomaliesApp, SmartPhoneApp

    return {
        "call-forwarding": CallForwardingApp,
        "rfid": RFIDAnomaliesApp,
        "smart-phone": SmartPhoneApp,
    }[app_key]()


def app_inputs(app_key: str):
    """(constraints, registry_factory, stream, strategy, use_window)."""
    for key, strategy, use_window, kwargs in APP_CASES:
        if key == app_key:
            app = build_app(app_key)
            stream = app.generate_workload(APP_ERR_RATE, APP_SEED, **kwargs)
            checker = app.build_checker()
            return (
                checker.constraints(),
                app.build_registry,
                stream,
                strategy,
                use_window,
            )
    raise KeyError(app_key)
