"""Golden decision-signature equivalence for the unified runtime.

The runtime refactor (ISSUE 5) moved the receive/check/resolve/use/
deliver/discard life cycle out of ``Middleware`` and ``engine/shard.py``
into :mod:`repro.runtime`.  The acceptance bar is byte-identical
decisions: the files under ``goldens/`` were recorded from the
PRE-refactor tree (see ``record_goldens.py``) and these tests replay
the exact same inputs against the current tree.

* 220 generated streams sweep both window semantics (count windows
  0-6 including the zero-window drop-latest degeneration, time delays
  0/2/6s), finite and infinite lifespans (expiry), and all four
  deterministic strategies.
* The three application streams (call-forwarding, RFID anomalies,
  smart-phone) run through the middleware and through the engine in
  every mode x kernel combination; each run's ordered
  delivered/discarded id lists must hash to the recorded signature.

A mismatch here means the refactor changed a resolution decision --
never update the goldens to make this pass without re-deriving them
from a tree whose decisions are known-good.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.core.strategy import make_strategy
from repro.engine import EngineConfig, ShardedEngine
from repro.middleware.bus import ContextDelivered, ContextDiscarded
from repro.middleware.manager import Middleware

from . import _streams

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
GENERATED = json.loads((GOLDEN_DIR / "generated_streams.json").read_text())
APPS = json.loads((GOLDEN_DIR / "app_streams.json").read_text())

ENGINE_RUNS = [
    (mode, kernels)
    for mode in ("inline", "local", "process")
    for kernels in (True, False)
]


def middleware_decisions(
    constraints, strategy_name, stream, *, use_window, use_delay,
    registry_factory=None,
):
    checker = (
        ConstraintChecker(constraints, registry=registry_factory())
        if registry_factory is not None
        else ConstraintChecker(constraints)
    )
    middleware = Middleware(
        checker,
        make_strategy(strategy_name),
        use_window=use_window,
        use_delay=use_delay,
    )
    delivered, discarded = [], []
    middleware.bus.subscribe(
        ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
    )
    middleware.receive_all(stream)
    return delivered, discarded


class TestGeneratedStreamGoldens:
    def test_recorded_trial_count(self):
        assert GENERATED["n_trials"] == _streams.N_TRIALS >= 200

    @pytest.mark.parametrize("seed", range(_streams.N_TRIALS))
    def test_signature_matches_seed_tree(self, seed):
        golden = GENERATED["trials"][seed]
        constraints, stream, params = _streams.trial_inputs(seed)
        assert params == golden["params"]
        delivered, discarded = middleware_decisions(
            constraints,
            params["strategy"],
            stream,
            use_window=params["use_window"],
            use_delay=params["use_delay"],
        )
        assert delivered == golden["delivered"]
        assert discarded == golden["discarded"]
        assert _streams.signature(delivered, discarded) == golden["signature"]

    def test_sweep_covers_both_window_kinds_and_expiry(self):
        params = [GENERATED["trials"][s]["params"] for s in range(_streams.N_TRIALS)]
        assert any(p["use_delay"] is not None for p in params)
        assert any(p["use_delay"] is None for p in params)
        assert any(p["use_window"] == 0 and p["use_delay"] is None for p in params)
        # Finite lifespans appear in every stream's generator mix, so
        # expiry is exercised whenever a short-lived context's slot
        # passes; assert the generator still produces them.
        _, stream, _ = _streams.trial_inputs(0)
        assert any(c.expiry != float("inf") for c in stream)


class TestApplicationStreamGoldens:
    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_middleware_signature(self, app_key):
        golden = APPS[app_key]["runs"]["middleware"]
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs(app_key)
        )
        assert len(stream) == APPS[app_key]["n_contexts"]
        delivered, discarded = middleware_decisions(
            constraints,
            strategy,
            stream,
            use_window=use_window,
            use_delay=None,
            registry_factory=registry_factory,
        )
        assert len(delivered) == golden["delivered"]
        assert len(discarded) == golden["discarded"]
        assert _streams.signature(delivered, discarded) == golden["signature"]

    @pytest.mark.parametrize("mode,kernels", ENGINE_RUNS)
    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_engine_signature(self, app_key, mode, kernels):
        key = f"{mode}-kernels-{'on' if kernels else 'off'}"
        golden = APPS[app_key]["runs"][key]
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs(app_key)
        )
        engine = ShardedEngine(
            constraints,
            strategy=strategy,
            registry_factory=registry_factory,
            config=EngineConfig(
                shards=_streams.APP_SHARDS,
                mode=mode,
                use_window=use_window,
                kernels=kernels,
            ),
        )
        result = engine.run(stream)
        delivered = result.delivered_ids
        discarded = result.discarded_ids
        assert len(delivered) == golden["delivered"]
        assert len(discarded) == golden["discarded"]
        assert _streams.signature(delivered, discarded) == golden["signature"]

    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_batch_toggle_is_decision_neutral(self, app_key):
        """--no-runtime-batch is a perf lever, never a decision lever."""
        golden = APPS[app_key]["runs"]["inline-kernels-on"]
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs(app_key)
        )
        engine = ShardedEngine(
            constraints,
            strategy=strategy,
            registry_factory=registry_factory,
            config=EngineConfig(
                shards=_streams.APP_SHARDS,
                use_window=use_window,
                runtime_batch=False,
            ),
        )
        result = engine.run(stream)
        signature = _streams.signature(
            result.delivered_ids, result.discarded_ids
        )
        assert signature == golden["signature"]
