"""Shard checkpoints round-trip the use-scheduler state.

The checkpoint no longer carries a raw pending-use deque or a pickled
expiry heap: it snapshots the
:class:`~repro.runtime.scheduler.UseScheduler` and relies on pool
listeners to rebuild the expiry heap (and the checker's candidate
indexes) when the pool contents are re-added on restore.  These tests
pin both halves: the scheduler snapshot survives a pickle round-trip
with its window arithmetic intact, and a resumed shard finishes with
decisions identical to an uninterrupted one.
"""

from __future__ import annotations

import pickle

from repro.constraints.ast import Constraint, forall, pred
from repro.core.context import Context
from repro.engine.shard import ShardExecutionState, ShardSpec


def _constraint() -> Constraint:
    return Constraint(
        name="same-subject-window",
        formula=forall(
            "a",
            "loc",
            forall(
                "b",
                "badge",
                pred("same_subject", "a", "b").implies(
                    pred("within_time", "a", "b", 3.0)
                ),
            ),
        ),
    )


def _stream(n: int = 40):
    out = []
    for i in range(n):
        ts = float(i)
        out.append(
            Context(
                ctx_id=f"c{i}",
                ctx_type="loc" if i % 2 == 0 else "badge",
                subject=f"s{i % 3}",
                value=i,
                timestamp=ts,
                lifespan=15.0 if i % 4 == 0 else float("inf"),
            )
        )
    return out


def _batches(stream, size=8):
    return [stream[i : i + size] for i in range(0, len(stream), size)]


class TestSchedulerCheckpointRoundTrip:
    def test_snapshot_rides_the_checkpoint_and_restores(self):
        spec = ShardSpec(
            shard_id=0, constraints=(_constraint(),), strategy="drop-bad",
            use_window=12,
        )
        stream = _stream()
        batches = _batches(stream)

        state = ShardExecutionState(spec)
        for i, batch in enumerate(batches[:3]):
            state.process_batch(i, batch)
        before = state.driver.scheduler
        assert len(before) > 0, "window must leave uses pending mid-stream"

        blob = pickle.dumps(state.checkpoint())
        ckpt = pickle.loads(blob)
        assert ckpt.scheduler["arrivals"] == before.arrivals

        resumed = ShardExecutionState(spec, checkpoint=ckpt)
        after = resumed.driver.scheduler
        assert after.arrivals == before.arrivals
        assert [c.ctx_id for c in after.pending()] == [
            c.ctx_id for c in before.pending()
        ]
        # The expiry heap is rebuilt from the re-added pool contents,
        # not shipped in the checkpoint.
        assert resumed.pipeline.next_expiry() == state.pipeline.next_expiry()

    def test_resumed_run_matches_uninterrupted(self):
        spec = ShardSpec(
            shard_id=0, constraints=(_constraint(),), strategy="drop-bad",
            use_window=12,
        )
        stream = _stream()
        batches = _batches(stream)

        reference = ShardExecutionState(spec)
        for i, batch in enumerate(batches):
            reference.process_batch(i, batch)
        expected = reference.finish()

        first = ShardExecutionState(spec)
        for i, batch in enumerate(batches[:3]):
            first.process_batch(i, batch)
        blob = pickle.dumps(first.checkpoint())

        resumed = ShardExecutionState(spec, checkpoint=pickle.loads(blob))
        for i, batch in enumerate(batches):
            resumed.process_batch(i, batch)  # replayed prefix is a no-op
        actual = resumed.finish()

        assert [c.ctx_id for c in actual.delivered] == [
            c.ctx_id for c in expected.delivered
        ]
        assert [c.ctx_id for c in actual.discarded] == [
            c.ctx_id for c in expected.discarded
        ]
