"""One-off golden recorder for the runtime refactor (ISSUE 5).

Run from the repo root with the PRE-refactor tree checked out::

    PYTHONPATH=src:tests python tests/runtime/record_goldens.py

It captures the seed implementation's decision signatures -- the
single-pool :class:`Middleware` on 200+ generated streams, and both
Middleware and the sharded engine (inline/local/process, kernels
on/off) on the three application streams -- into
``tests/runtime/goldens/*.json``.  The permanent equivalence suite
(``test_golden_equivalence.py``) replays the same inputs against the
refactored tree and requires byte-identical signatures.

The goldens are committed; re-running this script after the refactor
must be a no-op (that is the whole point).
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1]))

from runtime import _streams  # noqa: E402

from repro.constraints.checker import ConstraintChecker  # noqa: E402
from repro.core.strategy import make_strategy  # noqa: E402
from repro.engine import EngineConfig, ShardedEngine  # noqa: E402
from repro.middleware.bus import (  # noqa: E402
    ContextDelivered,
    ContextDiscarded,
)
from repro.middleware.manager import Middleware  # noqa: E402

OUT_DIR = pathlib.Path(__file__).parent / "goldens"


def middleware_decisions(constraints, strategy_name, stream, *, use_window,
                         use_delay, registry_factory=None):
    checker = (
        ConstraintChecker(constraints, registry=registry_factory())
        if registry_factory is not None
        else ConstraintChecker(constraints)
    )
    middleware = Middleware(
        checker,
        make_strategy(strategy_name),
        use_window=use_window,
        use_delay=use_delay,
    )
    delivered, discarded = [], []
    middleware.bus.subscribe(
        ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
    )
    middleware.receive_all(stream)
    return delivered, discarded


def record_generated() -> dict:
    trials = []
    for seed in range(_streams.N_TRIALS):
        constraints, stream, params = _streams.trial_inputs(seed)
        delivered, discarded = middleware_decisions(
            constraints,
            params["strategy"],
            stream,
            use_window=params["use_window"],
            use_delay=params["use_delay"],
        )
        trials.append(
            {
                "params": params,
                "delivered": delivered,
                "discarded": discarded,
                "signature": _streams.signature(delivered, discarded),
            }
        )
    return {"n_trials": len(trials), "trials": trials}


def engine_decisions(constraints, registry_factory, strategy_name, stream, *,
                     use_window, mode, kernels):
    engine = ShardedEngine(
        constraints,
        strategy=strategy_name,
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=_streams.APP_SHARDS,
            mode=mode,
            use_window=use_window,
            kernels=kernels,
        ),
    )
    result = engine.run(stream)
    return result.delivered_ids, result.discarded_ids


def record_apps() -> dict:
    records = {}
    for app_key, _strategy, _window, _kwargs in _streams.APP_CASES:
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs(app_key)
        )
        entry = {"n_contexts": len(stream), "runs": {}}
        delivered, discarded = middleware_decisions(
            constraints,
            strategy,
            stream,
            use_window=use_window,
            use_delay=None,
            registry_factory=registry_factory,
        )
        entry["runs"]["middleware"] = {
            "delivered": len(delivered),
            "discarded": len(discarded),
            "signature": _streams.signature(delivered, discarded),
        }
        for mode in ("inline", "local", "process"):
            for kernels in (True, False):
                delivered, discarded = engine_decisions(
                    constraints,
                    registry_factory,
                    strategy,
                    stream,
                    use_window=use_window,
                    mode=mode,
                    kernels=kernels,
                )
                key = f"{mode}-kernels-{'on' if kernels else 'off'}"
                entry["runs"][key] = {
                    "delivered": len(delivered),
                    "discarded": len(discarded),
                    "signature": _streams.signature(delivered, discarded),
                }
                print(f"  {app_key} {key}: {entry['runs'][key]}")
        records[app_key] = entry
    return records


def main() -> None:
    OUT_DIR.mkdir(exist_ok=True)
    generated = record_generated()
    (OUT_DIR / "generated_streams.json").write_text(
        json.dumps(generated, indent=1, sort_keys=True) + "\n"
    )
    print(f"recorded {generated['n_trials']} generated-stream goldens")
    apps = record_apps()
    (OUT_DIR / "app_streams.json").write_text(
        json.dumps(apps, indent=1, sort_keys=True) + "\n"
    )
    print(f"recorded app goldens for {sorted(apps)}")


if __name__ == "__main__":
    main()
