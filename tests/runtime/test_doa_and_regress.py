"""Dead-on-arrival admission and regressing-timestamp soundness.

Two paired holes in the arrival path, fixed together:

* **Dead on arrival** -- a context whose ``timestamp + lifespan``
  already passed the pipeline clock at receive used to be admitted,
  checked, and scheduled; it then lingered until the *next* expiry
  sweep, during which it could be delivered or discard a live victim.
  It must instead be expired at receive (``ContextExpired``, ledger
  kind ``expire``), on both the per-context path
  (:meth:`PipelineDriver.receive`) and the batch path
  (:func:`~repro.runtime.batch.receive_batch`).

* **Regressing timestamps** -- the batch path's running
  ``next_expiry`` bound is only tightened by *admitted* contexts.
  Because the DOA fix guarantees every admitted context has
  ``expiry > now``, a straggler with a regressed timestamp can never
  plant a bound in the past (see the soundness note in
  :mod:`repro.runtime.batch`'s docstring).
"""

from __future__ import annotations

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.bus import (
    ContextDelivered,
    ContextExpired,
    ContextReceived,
)
from repro.middleware.manager import Middleware
from repro.runtime.batch import receive_batch


def loc(ctx_id, ts, lifespan=float("inf")):
    return Context(
        ctx_id=ctx_id,
        ctx_type="loc",
        subject="s",
        value=0.0,
        timestamp=ts,
        lifespan=lifespan,
    )


def build(use_window=3):
    middleware = Middleware(
        ConstraintChecker([]), make_strategy("drop-latest"),
        use_window=use_window,
    )
    events = {"received": [], "expired": [], "delivered": []}
    middleware.bus.subscribe(
        ContextReceived, lambda e: events["received"].append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextExpired, lambda e: events["expired"].append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextDelivered, lambda e: events["delivered"].append(e.context.ctx_id)
    )
    return middleware, events


class TestDeadOnArrival:
    def test_per_context_path_expires_at_receive(self):
        middleware, events = build()
        middleware.receive(loc("live", 10.0))
        # expiry = 0 + 5 = 5 <= clock (10): dead the instant it arrives.
        doa = loc("doa", 0.0, lifespan=5.0)
        middleware.receive(doa)
        assert events["received"] == ["live", "doa"]
        assert events["expired"] == ["doa"]
        assert doa.ctx_id not in [c.ctx_id for c in middleware.pool]
        middleware.flush_uses()
        assert events["delivered"] == ["live"]

    def test_batch_path_matches_per_context_path(self):
        stream = [
            loc("a", 10.0),
            loc("doa", 0.0, lifespan=5.0),
            loc("b", 11.0),
        ]
        per_ctx, per_events = build()
        for c in stream:
            per_ctx.receive(c)
        per_ctx.flush_uses()

        batched, batch_events = build()
        receive_batch(batched._driver, stream)
        batched.flush_uses()

        assert batch_events == per_events
        assert batch_events["expired"] == ["doa"]

    def test_exactly_expired_is_dead(self):
        """``expiry == now`` is dead, matching ``Context.is_expired``."""
        middleware, events = build()
        middleware.receive(loc("live", 8.0))
        middleware.receive(loc("edge", 3.0, lifespan=5.0))  # expiry == 8.0
        assert events["expired"] == ["edge"]

    def test_not_yet_expired_straggler_is_admitted(self):
        middleware, events = build()
        middleware.receive(loc("live", 8.0))
        # Regressed timestamp but expiry 3 + 12 = 15 > 8: still live.
        middleware.receive(loc("late", 3.0, lifespan=12.0))
        assert events["expired"] == []
        assert "late" in [c.ctx_id for c in middleware.pool]


class TestRegressingTimestamps:
    def test_regressed_bound_cannot_stall_the_sweep(self):
        """The regression the batch docstring documents: a DOA
        straggler must not plant ``next_expiry`` in the past, which
        would make every later arrival re-run the expiry sweep (or,
        before the bound's guards, skip sweeps entirely)."""
        middleware, events = build()
        stream = [
            loc("a", 10.0),
            loc("doa", 0.0, lifespan=5.0),  # regressed AND dead
            loc("b", 10.5, lifespan=5.0),  # live: expires at 15.5
            loc("c", 20.0),  # past b's expiry: sweep must fire
        ]
        receive_batch(middleware._driver, stream)
        middleware.flush_uses()
        assert events["expired"] == ["doa", "b"]
        assert sorted(events["delivered"]) == ["a", "c"]

    def test_regressed_arrivals_never_move_the_clock_backwards(self):
        middleware, _ = build()
        middleware.receive(loc("a", 10.0))
        middleware.receive(loc("late", 2.0, lifespan=100.0))
        assert middleware.clock.now() == 10.0
