"""Guard: the drop-bad life cycle exists in exactly one module.

ISSUE 5's acceptance bar: ``repro.runtime.pipeline`` is the only place
the receive/check/resolve/use/deliver/discard stage logic lives.  The
middleware manager and the engine shards must stay *adapters* -- if
someone re-introduces an independent receive/use implementation (the
pre-refactor duplication), these tests fail before reviewers have to
spot it.
"""

from __future__ import annotations

import inspect
import pathlib

from repro.engine import shard
from repro.middleware import manager
from repro.runtime.pipeline import PipelineDriver, ResolutionPipeline

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Tokens that mark lifecycle stage logic: the resolution-service
#: change handlers and the stage event publications.
LIFECYCLE_TOKENS = (
    "handle_addition",
    "handle_use",
    "ContextReceived",
    "InconsistencyDetected",
    "ContextAdmitted",
    "ContextBuffered",
    "ContextMarkedBad",
    "ContextDelivered",
    "ContextExpired",
    ".publish(",
)


class TestSingleLifecycleModule:
    def test_shard_module_has_no_lifecycle_code(self):
        source = (SRC / "engine" / "shard.py").read_text()
        for token in LIFECYCLE_TOKENS:
            assert token not in source, (
                f"engine/shard.py contains {token!r}: the life cycle must "
                "stay in repro/runtime/pipeline.py; shards are adapters"
            )

    def test_manager_module_has_no_lifecycle_code(self):
        source = (SRC / "middleware" / "manager.py").read_text()
        for token in LIFECYCLE_TOKENS:
            assert token not in source, (
                f"middleware/manager.py contains {token!r}: the life cycle "
                "must stay in repro/runtime/pipeline.py; the manager is an "
                "adapter"
            )

    def test_runtime_pipeline_is_the_one_lifecycle_module(self):
        source = (SRC / "runtime" / "pipeline.py").read_text()
        for token in ("handle_addition", "handle_use", "ContextDelivered"):
            assert token in source

    def test_shard_pipeline_inherits_the_runtime_stages(self):
        assert issubclass(shard.ShardPipeline, ResolutionPipeline)
        assert issubclass(shard.StreamDriver, PipelineDriver)
        # The shard overrides only decorate with counters; the stage
        # bodies they execute are the inherited ones.
        for name in ("add", "use"):
            override = inspect.getsource(getattr(shard.ShardPipeline, name))
            assert f"super().{name}(" in override
        for name in ("expire_due", "next_expiry", "attach_telemetry"):
            assert name not in shard.ShardPipeline.__dict__

    def test_middleware_delegates_to_the_runtime(self):
        from repro.constraints.checker import ConstraintChecker
        from repro.core.strategy import make_strategy

        middleware = manager.Middleware(
            ConstraintChecker([]), make_strategy("drop-bad")
        )
        assert isinstance(middleware._pipeline, ResolutionPipeline)
        assert isinstance(middleware._driver, PipelineDriver)
        assert middleware.pool is middleware._pipeline.pool
