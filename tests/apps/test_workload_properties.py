"""Property tests over the application workload generators.

For any seed and error rate, every generator must produce a stream
that is time-ordered, correctly ground-truth-flagged at roughly the
requested rate, and free of false inconsistencies when the rate is
zero (Heuristic Rule 1 by construction).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.call_forwarding import CallForwardingApp
from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.apps.smart_phone import SmartPhoneApp

APPS = {
    "call-forwarding": (
        CallForwardingApp(),
        {"duration": 120.0},
    ),
    "rfid": (RFIDAnomaliesApp(), {"items": 5}),
    "smart-phone": (SmartPhoneApp(), {}),
}


@pytest.mark.parametrize("app_name", sorted(APPS))
class TestWorkloadProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        err_rate=st.floats(min_value=0.05, max_value=0.45),
    )
    def test_stream_well_formed(self, app_name, seed, err_rate):
        app, kwargs = APPS[app_name]
        contexts = app.generate_workload(err_rate, seed, **kwargs)
        assert contexts, "empty workload"
        # Time-ordered.
        times = [c.timestamp for c in contexts]
        assert times == sorted(times)
        # Unique ids.
        ids = [c.ctx_id for c in contexts]
        assert len(set(ids)) == len(ids)
        # Ground-truth rate in a generous band around the request
        # (calendar contexts are never corrupted, misses thin streams).
        sensed = [c for c in contexts if c.ctx_type != "calendar"]
        rate = sum(c.corrupted for c in sensed) / len(sensed)
        assert err_rate - 0.2 < rate < err_rate + 0.2

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_zero_error_rate_is_rule1_clean(self, app_name, seed):
        """With no injected errors, no constraint ever fires."""
        app, kwargs = APPS[app_name]
        contexts = app.generate_workload(0.0, seed, **kwargs)
        assert not any(c.corrupted for c in contexts)
        checker = app.build_checker()
        incs = checker.check_all(contexts, now=contexts[-1].timestamp)
        assert incs == [], [
            (i.constraint, sorted(c.ctx_id for c in i.contexts))
            for i in incs[:3]
        ]
