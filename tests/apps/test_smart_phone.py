"""Unit tests for the smart-phone application bundle."""

import random

import pytest

from repro.apps.smart_phone import (
    NOISE_BANDS,
    VENUES,
    RingerController,
    SmartPhoneApp,
)
from repro.core.context import Context


@pytest.fixture(scope="module")
def app():
    return SmartPhoneApp()


def venue(ctx_id, name, t, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="venue",
        subject=subject,
        value=name,
        timestamp=float(t),
    )


def noise(ctx_id, level, t, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="noise",
        subject=subject,
        value=level,
        timestamp=float(t),
    )


def calendar(ctx_id, kind, start, end, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="calendar",
        subject=subject,
        value=kind,
        timestamp=float(start),
        attributes=(("end", float(end)), ("start", float(start))),
    )


class TestConstraints:
    def test_five_constraints_three_types(self, app):
        constraints = app.build_constraints()
        assert len(constraints) == 5
        types = set()
        for constraint in constraints:
            types |= constraint.relevant_types()
        assert types == {"venue", "noise", "calendar"}

    def test_venue_teleport_violation(self, app):
        checker = app.build_checker()
        a = venue("a", "home", 0.0)
        b = venue("b", "stadium", 2.0)  # home -> stadium not adjacent
        incs = checker.detect(b, [a], now=2.0)
        assert any(i.constraint == "sp-venue-no-teleport" for i in incs)

    def test_street_transitions_fine(self, app):
        checker = app.build_checker()
        a = venue("a", "home", 0.0)
        b = venue("b", "street", 2.0)
        assert checker.detect(b, [a], now=2.0) == []

    def test_noise_venue_agreement(self, app):
        checker = app.build_checker()
        place = venue("v", "home", 10.0)
        quiet = noise("q", 30.0, 10.1)
        roaring = noise("r", 100.0, 10.2)
        assert checker.detect(quiet, [place], now=10.1) == []
        incs = checker.detect(roaring, [place], now=10.2)
        assert any(
            i.constraint == "sp-noise-venue-agreement" for i in incs
        )

    def test_noise_continuity(self, app):
        checker = app.build_checker()
        a = noise("a", 30.0, 0.0)
        b = noise("b", 105.0, 2.0)
        incs = checker.detect(b, [a], now=2.0)
        assert any(i.constraint == "sp-noise-continuity" for i in incs)

    def test_calendar_venue_agreement(self, app):
        checker = app.build_checker()
        event = calendar("e", "concert", 100.0, 140.0)
        at_hall = venue("v1", "concert-hall", 120.0)
        at_home = venue("v2", "home", 125.0)
        assert checker.detect(at_hall, [event], now=120.0) == []
        incs = checker.detect(at_home, [event, at_hall], now=125.0)
        assert any(
            i.constraint == "sp-calendar-venue-agreement" for i in incs
        )

    def test_event_window_respected(self, app):
        checker = app.build_checker()
        event = calendar("e", "concert", 100.0, 140.0)
        before_event = venue("v", "home", 50.0)
        assert checker.detect(before_event, [event], now=50.0) == []


class TestWorkload:
    def test_clean_stream_has_no_inconsistencies(self, app):
        """Rule 1 holds structurally for the smart-phone constraints."""
        contexts = app.generate_workload(0.0, seed=11, days=2)
        checker = app.build_checker()
        assert checker.check_all(contexts, now=contexts[-1].timestamp) == []

    def test_all_three_context_types_present(self, app):
        contexts = app.generate_workload(0.2, seed=11)
        assert {c.ctx_type for c in contexts} == {
            "venue",
            "noise",
            "calendar",
        }

    def test_calendar_contexts_never_corrupted(self, app):
        contexts = app.generate_workload(0.4, seed=11)
        assert all(
            not c.corrupted for c in contexts if c.ctx_type == "calendar"
        )

    def test_error_rate_reflected(self, app):
        contexts = app.generate_workload(0.3, seed=11, days=3)
        sensed = [c for c in contexts if c.ctx_type != "calendar"]
        rate = sum(c.corrupted for c in sensed) / len(sensed)
        assert 0.2 < rate < 0.4

    def test_deterministic(self, app):
        a = app.generate_workload(0.2, seed=5)
        b = app.generate_workload(0.2, seed=5)
        assert a == b

    def test_schedule_starts_and_ends_at_home(self, app):
        legs = app.daily_schedule(random.Random(1))
        assert legs[0][0] == "home"
        assert legs[-1][0] == "home"
        venues = [leg[0] for leg in legs]
        # every change of venue passes through the street
        for a, b in zip(venues, venues[1:]):
            assert a == "street" or b == "street" or a == b


class TestSituations:
    def test_three_situations(self, app):
        assert len(app.build_situations()) == 3

    def test_harness_compatible(self, app):
        """The smart-phone app works in the comparison harness."""
        from repro.core.strategy import make_strategy
        from repro.experiments.harness import run_group

        contexts = app.generate_workload(0.3, seed=13, days=2)
        metrics = run_group(
            app,
            make_strategy("drop-bad"),
            contexts,
            err_rate=0.3,
            seed=13,
            use_window=8,
        )
        assert metrics.contexts_total == len(contexts)
        assert metrics.removal_precision > 0.5


class TestRingerController:
    def test_profile_changes(self):
        controller = RingerController(owner="peter")
        controller.on_context(venue("a", "concert-hall", 1.0))
        assert controller.profile == "vibrate"
        controller.on_context(venue("b", "stadium", 2.0))
        assert controller.profile == "loud"
        controller.on_context(venue("c", "street", 3.0))
        assert controller.profile == "normal"
        assert len(controller.changes) == 3

    def test_ignores_other_subjects_and_types(self):
        controller = RingerController(owner="peter")
        controller.on_context(venue("a", "stadium", 1.0, subject="alice"))
        controller.on_context(noise("n", 50.0, 1.0))
        assert controller.changes == []
