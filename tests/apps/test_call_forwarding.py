"""Unit tests for the Call Forwarding application bundle."""

import pytest

from repro.apps.call_forwarding import (
    CallForwardingApp,
    ForwardingController,
    SAMPLE_PERIOD,
    VELOCITY_BOUND,
)
from repro.core.context import Context


@pytest.fixture(scope="module")
def app():
    return CallForwardingApp()


def loc(ctx_id, pos, t):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="peter",
        value=pos,
        timestamp=float(t),
    )


def badge(ctx_id, room, t, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="badge",
        subject=subject,
        value=room,
        timestamp=float(t),
    )


class TestConstraints:
    def test_five_constraints(self, app):
        constraints = app.build_constraints()
        assert len(constraints) == 5
        assert len({c.name for c in constraints}) == 5

    def test_adjacent_velocity_violation(self, app):
        checker = app.build_checker()
        a = loc("a", (5.0, 4.0), 0.0)
        b = loc("b", (5.0 + VELOCITY_BOUND * SAMPLE_PERIOD + 1.0, 4.0), SAMPLE_PERIOD)
        incs = checker.detect(b, [a], now=SAMPLE_PERIOD)
        assert any(i.constraint == "cf-velocity-adjacent" for i in incs)

    def test_separated_velocity_violation(self, app):
        checker = app.build_checker()
        a = loc("a", (5.0, 4.0), 0.0)
        b = loc(
            "b",
            (5.0 + VELOCITY_BOUND * 2 * SAMPLE_PERIOD + 1.0, 4.0),
            2 * SAMPLE_PERIOD,
        )
        incs = checker.detect(b, [a], now=2 * SAMPLE_PERIOD)
        names = {i.constraint for i in incs}
        assert "cf-velocity-separated" in names
        assert "cf-velocity-adjacent" not in names

    def test_feasible_area_violation_is_unary(self, app):
        checker = app.build_checker()
        outside = loc("x", (-30.0, -30.0), 0.0)
        incs = checker.detect(outside, [], now=0.0)
        assert [i.constraint for i in incs] == ["cf-feasible-area"]
        assert len(list(incs[0])) == 1

    def test_badge_teleport_violation(self, app):
        checker = app.build_checker()
        a = badge("a", "office-1", 0.0)
        b = badge("b", "office-4", SAMPLE_PERIOD)  # not adjacent rooms
        incs = checker.detect(b, [a], now=SAMPLE_PERIOD)
        assert any(i.constraint == "cf-badge-no-teleport" for i in incs)

    def test_badge_corridor_moves_are_fine(self, app):
        checker = app.build_checker()
        a = badge("a", "office-1", 0.0)
        b = badge("b", "corridor", SAMPLE_PERIOD)
        assert checker.detect(b, [a], now=SAMPLE_PERIOD) == []

    def test_badge_location_agreement(self, app):
        checker = app.build_checker()
        inside_office2 = (15.0, 4.0)
        location = loc("l", inside_office2, 10.0)
        agreeing = badge("b1", "office-2", 10.0)
        disagreeing = badge("b2", "lounge", 10.0)
        assert checker.detect(agreeing, [location], now=10.0) == []
        incs = checker.detect(disagreeing, [location], now=10.0)
        assert any(
            i.constraint == "cf-badge-location-agreement" for i in incs
        )

    def test_different_subjects_never_conflict(self, app):
        checker = app.build_checker()
        a = badge("a", "office-1", 0.0, subject="peter")
        b = badge("b", "office-4", SAMPLE_PERIOD, subject="alice")
        assert checker.detect(b, [a], now=SAMPLE_PERIOD) == []


class TestSituations:
    def test_three_situations(self, app):
        situations = app.build_situations()
        assert len(situations) == 3
        assert {s.name for s in situations} == {
            "cf-at-desk",
            "cf-in-meeting",
            "cf-with-colleague",
        }


class TestWorkload:
    def test_workload_is_deterministic(self, app):
        a = app.generate_workload(0.2, seed=5, duration=60.0)
        b = app.generate_workload(0.2, seed=5, duration=60.0)
        assert [c.ctx_id for c in a] == [c.ctx_id for c in b]
        assert [c.value for c in a] == [c.value for c in b]

    def test_workload_time_ordered(self, app):
        contexts = app.generate_workload(0.2, seed=5, duration=60.0)
        times = [c.timestamp for c in contexts]
        assert times == sorted(times)

    def test_error_rate_reflected(self, app):
        contexts = app.generate_workload(0.4, seed=5, duration=300.0)
        rate = sum(c.corrupted for c in contexts) / len(contexts)
        assert 0.3 < rate < 0.5

    def test_both_context_types_present(self, app):
        contexts = app.generate_workload(0.1, seed=5, duration=60.0)
        types = {c.ctx_type for c in contexts}
        assert types == {"location", "badge"}

    def test_lifespan_applied(self, app):
        contexts = app.generate_workload(0.1, seed=5, duration=30.0, lifespan=45.0)
        assert all(c.lifespan == 45.0 for c in contexts)


class TestForwardingController:
    def test_routing_decisions(self):
        controller = ForwardingController(subject="peter")
        controller.on_context(badge("a", "office-2", 1.0))
        assert controller.target == "desk-phone"
        controller.on_context(badge("b", "meeting", 2.0))
        assert controller.target == "voicemail"
        controller.on_context(badge("c", "corridor", 3.0))
        assert controller.target == "reception"
        assert len(controller.decisions) == 3

    def test_ignores_other_subjects_and_types(self):
        controller = ForwardingController(subject="peter")
        controller.on_context(badge("a", "office-2", 1.0, subject="alice"))
        controller.on_context(loc("l", (0.0, 0.0), 1.0))
        assert controller.decisions == []

    def test_no_duplicate_decisions(self):
        controller = ForwardingController(subject="peter")
        controller.on_context(badge("a", "office-2", 1.0))
        controller.on_context(badge("b", "office-2", 2.0))
        assert len(controller.decisions) == 1
