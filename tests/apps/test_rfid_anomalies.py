"""Unit tests for the RFID data anomalies application bundle."""

import random

import pytest

from repro.apps.rfid_anomalies import FLOW_RANK, READ_PERIOD, RFIDAnomaliesApp
from repro.core.context import Context


@pytest.fixture(scope="module")
def app():
    return RFIDAnomaliesApp()


def read(ctx_id, zone, t, tag="tag-001"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="rfid_read",
        subject=tag,
        value=zone,
        timestamp=float(t),
    )


class TestConstraints:
    def test_five_constraints(self, app):
        constraints = app.build_constraints()
        assert len(constraints) == 5

    def test_single_location_violation(self, app):
        checker = app.build_checker()
        a = read("a", "dock", 10.0)
        b = read("b", "checkout", 10.2)  # same instant, far zones
        incs = checker.detect(b, [a], now=10.2)
        assert any(i.constraint == "rf-single-location" for i in incs)

    def test_adjacent_zones_compatible(self, app):
        checker = app.build_checker()
        a = read("a", "dock", 10.0)
        b = read("b", "staging", 10.2)
        incs = checker.detect(b, [a], now=10.2)
        assert all(i.constraint != "rf-single-location" for i in incs)

    def test_no_teleport_violation(self, app):
        checker = app.build_checker()
        a = read("a", "dock", 10.0)
        b = read("b", "checkout", 10.0 + READ_PERIOD)
        incs = checker.detect(b, [a], now=b.timestamp)
        assert any(i.constraint == "rf-no-teleport" for i in incs)

    def test_flow_order_violation(self, app):
        checker = app.build_checker()
        a = read("a", "shelf-C", 10.0)
        b = read("b", "staging", 10.0 + READ_PERIOD)  # backwards
        incs = checker.detect(b, [a], now=b.timestamp)
        assert any(i.constraint == "rf-flow-order" for i in incs)

    def test_no_reappear_after_checkout(self, app):
        checker = app.build_checker()
        out = read("a", "checkout", 10.0)
        ghost = read("b", "shelf-A", 30.0)
        incs = checker.detect(ghost, [out], now=30.0)
        assert any(i.constraint == "rf-no-reappear" for i in incs)

    def test_checkout_provenance_existential(self, app):
        checker = app.build_checker()
        lone_checkout = read("a", "checkout", 10.0)
        incs = checker.detect(lone_checkout, [], now=10.0)
        assert any(i.constraint == "rf-checkout-provenance" for i in incs)
        # With an earlier shelf read the checkout is clean.
        shelf = read("s", "shelf-A", 5.0)
        checker2 = app.build_checker()
        incs2 = checker2.detect(
            read("b", "checkout", 10.0, tag="tag-001"), [shelf], now=10.0
        )
        assert all(
            i.constraint != "rf-checkout-provenance" for i in incs2
        )

    def test_different_tags_never_conflict(self, app):
        checker = app.build_checker()
        a = read("a", "dock", 10.0, tag="tag-001")
        b = read("b", "checkout", 10.2, tag="tag-002")
        incs = checker.detect(b, [a], now=10.2)
        assert all(i.constraint != "rf-single-location" for i in incs)


class TestFlowRank:
    def test_monotone_along_intended_flow(self, app):
        flow = app.item_flow(random.Random(1))
        ranks = [FLOW_RANK[z] for z in flow]
        assert ranks == sorted(ranks)
        assert flow[0] == "dock"
        assert flow[-1] == "checkout"


class TestSituations:
    def test_three_situations(self, app):
        assert len(app.build_situations()) == 3


class TestWorkload:
    def test_deterministic(self, app):
        a = app.generate_workload(0.2, seed=9, items=4)
        b = app.generate_workload(0.2, seed=9, items=4)
        assert [c.value for c in a] == [c.value for c in b]

    def test_time_ordered_multi_item(self, app):
        contexts = app.generate_workload(0.2, seed=9, items=4)
        times = [c.timestamp for c in contexts]
        assert times == sorted(times)
        assert len({c.subject for c in contexts}) == 4

    def test_error_rate_reflected(self, app):
        contexts = app.generate_workload(0.3, seed=9, items=20)
        rate = sum(c.corrupted for c in contexts) / len(contexts)
        assert 0.2 < rate < 0.4

    def test_zero_error_rate_clean_flow(self, app):
        contexts = app.generate_workload(0.0, seed=9, items=3)
        assert not any(c.corrupted for c in contexts)
        checker = app.build_checker()
        incs = checker.check_all(contexts, now=contexts[-1].timestamp)
        # Rule 1: expected contexts alone form no inconsistency.
        assert incs == []
