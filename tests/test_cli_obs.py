"""Tests for the ``repro obs`` CLI and the engine telemetry sidecars."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.obs import Telemetry, write_sidecar


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def sidecar_path(tmp_path):
    telemetry = Telemetry(enabled=True)
    with telemetry.stage("check"):
        pass
    with telemetry.stage("deliver"):
        pass
    telemetry.count("ctx_total", 3, help="Contexts seen")
    path = tmp_path / "TELEMETRY_unit.json"
    write_sidecar(path, telemetry, meta={"benchmark": "unit"})
    return path


class TestObsParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_export_validates_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "export", "x.json", "--format", "xml"])


class TestObsCommands:
    def test_summary(self, sidecar_path):
        code, text = run_cli("obs", "summary", str(sidecar_path))
        assert code == 0
        assert "benchmark: unit" in text
        assert "ctx_total: 3" in text
        assert "stage.deliver: 1" in text

    def test_export_prometheus(self, sidecar_path):
        code, text = run_cli(
            "obs", "export", str(sidecar_path), "--format", "prom"
        )
        assert code == 0
        assert "# TYPE ctx_total counter" in text
        assert "ctx_total 3" in text
        assert 'repro_stage_seconds_bucket{stage="check",le="+Inf"} 1' in text

    def test_export_json(self, sidecar_path):
        code, text = run_cli(
            "obs", "export", str(sidecar_path), "--format", "json"
        )
        assert code == 0
        document = json.loads(text)
        assert document["families"]["ctx_total"]["type"] == "counter"

    def test_spans(self, sidecar_path):
        code, text = run_cli("obs", "spans", str(sidecar_path), "--top", "1")
        assert code == 0
        assert "Slowest spans (top 1 of 2 ringed)" in text

    def test_missing_file_is_exit_2(self, tmp_path):
        code, _ = run_cli("obs", "summary", str(tmp_path / "absent.json"))
        assert code == 2

    def test_non_sidecar_is_exit_2(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"something": "else"}', encoding="utf-8")
        code, _ = run_cli("obs", "summary", str(path))
        assert code == 2


class TestEngineTelemetrySidecars:
    def test_engine_run_writes_sidecar_on_request(self, tmp_path):
        path = tmp_path / "TELEMETRY_run.json"
        code, text = run_cli(
            "engine", "run", "rfid", "--shards", "2",
            "--telemetry-out", str(path),
        )
        assert code == 0
        assert f"telemetry sidecar written to {path}" in text
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["span_counts"].get("stage.deliver", 0) > 0

    def test_engine_bench_writes_sidecar_by_default_path(self, tmp_path):
        bench_json = tmp_path / "BENCH.json"
        sidecar = tmp_path / "TELEMETRY_bench.json"
        code, text = run_cli(
            "engine", "bench", "--shards", "1", "2",
            "--contexts", "200", "--repeats", "1",
            "--json", str(bench_json),
            "--telemetry-out", str(sidecar),
        )
        assert code == 0
        assert sidecar.exists()
        document = json.loads(sidecar.read_text(encoding="utf-8"))
        assert document["meta"]
        assert any(
            entry["name"] == "repro_stage_seconds"
            for entry in document["metrics"]["series"]
        )

    def test_engine_bench_no_telemetry_skips_sidecar(self, tmp_path):
        bench_json = tmp_path / "BENCH.json"
        sidecar = tmp_path / "TELEMETRY_bench.json"
        code, text = run_cli(
            "engine", "bench", "--shards", "1",
            "--contexts", "200", "--repeats", "1",
            "--json", str(bench_json),
            "--telemetry-out", str(sidecar),
            "--no-telemetry",
        )
        assert code == 0
        assert not sidecar.exists()
        assert "telemetry sidecar" not in text
