"""Unit tests for plug-in services and application subscriptions."""

import pytest

from repro.middleware.service import MiddlewareService, ServiceRegistry
from repro.middleware.subscription import SubscriptionRegistry


class Recorder(MiddlewareService):
    def __init__(self, name):
        self.name = name
        self.events = []

    def on_attach(self, middleware):
        self.events.append("attach")

    def on_start(self):
        self.events.append("start")

    def on_stop(self):
        self.events.append("stop")


class TestServiceRegistry:
    def test_add_get_iterate(self):
        registry = ServiceRegistry()
        a, b = Recorder("a"), Recorder("b")
        registry.add(a)
        registry.add(b)
        assert registry.get("a") is a
        assert registry.maybe_get("missing") is None
        assert list(registry) == [a, b]
        assert len(registry) == 2
        assert "a" in registry

    def test_duplicate_names_rejected(self):
        registry = ServiceRegistry()
        registry.add(Recorder("a"))
        with pytest.raises(ValueError, match="already plugged in"):
            registry.add(Recorder("a"))

    def test_start_stop_all(self):
        registry = ServiceRegistry()
        a = Recorder("a")
        registry.add(a)
        registry.start_all()
        registry.stop_all()
        assert a.events == ["start", "stop"]


class TestSubscriptions:
    def test_dispatch_filters_type_and_subject(self, mk):
        registry = SubscriptionRegistry()
        got_badges, got_peter = [], []
        registry.subscribe("app1", got_badges.append, ctx_type="badge")
        registry.subscribe("app2", got_peter.append, subject="peter")
        badge_peter = mk(ctx_type="badge", subject="peter")
        loc_peter = mk(ctx_type="location", subject="peter")
        badge_alice = mk(ctx_type="badge", subject="alice")
        for ctx in (badge_peter, loc_peter, badge_alice):
            registry.dispatch(ctx)
        assert got_badges == [badge_peter, badge_alice]
        assert got_peter == [badge_peter, loc_peter]

    def test_dispatch_returns_match_count(self, mk):
        registry = SubscriptionRegistry()
        registry.subscribe("app", lambda c: None)
        registry.subscribe("app", lambda c: None, ctx_type="badge")
        assert registry.dispatch(mk(ctx_type="badge")) == 2
        assert registry.dispatch(mk(ctx_type="location")) == 1

    def test_received_counter(self, mk):
        registry = SubscriptionRegistry()
        sub = registry.subscribe("app", lambda c: None)
        registry.dispatch(mk())
        registry.dispatch(mk())
        assert sub.received == 2

    def test_for_app(self, mk):
        registry = SubscriptionRegistry()
        registry.subscribe("a", lambda c: None)
        registry.subscribe("b", lambda c: None)
        assert len(registry.for_app("a")) == 1
        assert len(registry) == 2
