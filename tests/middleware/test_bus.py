"""Unit tests for the event bus."""

from repro.middleware.bus import (
    ContextAdmitted,
    ContextDiscarded,
    ContextReceived,
    Event,
    EventBus,
)


class TestEventBus:
    def test_exact_type_dispatch(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(ContextReceived, seen.append)
        event = ContextReceived(at=1.0, context=mk())
        bus.publish(event)
        bus.publish(ContextDiscarded(at=2.0, context=mk()))
        assert seen == [event]

    def test_base_class_receives_subtypes(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(ContextReceived(at=1.0, context=mk()))
        bus.publish(ContextAdmitted(at=2.0, context=mk()))
        assert len(seen) == 2

    def test_multiple_handlers_in_order(self, mk):
        bus = EventBus()
        order = []
        bus.subscribe(ContextReceived, lambda e: order.append("first"))
        bus.subscribe(ContextReceived, lambda e: order.append("second"))
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert order == ["first", "second"]

    def test_published_counter_and_clear(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(ContextReceived, seen.append)
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert bus.published == 1
        bus.clear()
        bus.publish(ContextReceived(at=1.0, context=mk()))
        assert seen == [] or len(seen) == 1  # cleared subscriptions
        assert bus.published == 1

    def test_handler_added_during_publish_not_invoked_for_same_event(
        self, mk
    ):
        bus = EventBus()
        late_calls = []

        def handler(event):
            bus.subscribe(ContextReceived, late_calls.append)

        bus.subscribe(ContextReceived, handler)
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert late_calls == []
