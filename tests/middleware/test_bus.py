"""Unit tests for the event bus."""

import logging

from repro.middleware.bus import (
    ContextAdmitted,
    ContextDiscarded,
    ContextReceived,
    Event,
    EventBus,
    SubscriberError,
)


class TestEventBus:
    def test_exact_type_dispatch(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(ContextReceived, seen.append)
        event = ContextReceived(at=1.0, context=mk())
        bus.publish(event)
        bus.publish(ContextDiscarded(at=2.0, context=mk()))
        assert seen == [event]

    def test_base_class_receives_subtypes(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(Event, seen.append)
        bus.publish(ContextReceived(at=1.0, context=mk()))
        bus.publish(ContextAdmitted(at=2.0, context=mk()))
        assert len(seen) == 2

    def test_multiple_handlers_in_order(self, mk):
        bus = EventBus()
        order = []
        bus.subscribe(ContextReceived, lambda e: order.append("first"))
        bus.subscribe(ContextReceived, lambda e: order.append("second"))
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert order == ["first", "second"]

    def test_published_counter_and_clear(self, mk):
        bus = EventBus()
        seen = []
        bus.subscribe(ContextReceived, seen.append)
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert bus.published == 1
        bus.clear()
        bus.publish(ContextReceived(at=1.0, context=mk()))
        assert seen == [] or len(seen) == 1  # cleared subscriptions
        assert bus.published == 1

    def test_handler_added_during_publish_not_invoked_for_same_event(
        self, mk
    ):
        bus = EventBus()
        late_calls = []

        def handler(event):
            bus.subscribe(ContextReceived, late_calls.append)

        bus.subscribe(ContextReceived, handler)
        bus.publish(ContextReceived(at=0.0, context=mk()))
        assert late_calls == []


class TestSubscriberIsolation:
    def test_faulty_handler_does_not_block_later_handlers(self, mk):
        bus = EventBus()
        seen = []

        def boom(event):
            raise RuntimeError("faulty application callback")

        bus.subscribe(ContextReceived, boom)
        bus.subscribe(ContextReceived, seen.append)
        event = ContextReceived(at=1.0, context=mk())
        bus.publish(event)  # must not raise
        assert seen == [event]
        assert bus.subscriber_failures == 1

    def test_failure_published_as_subscriber_error(self, mk):
        bus = EventBus()
        errors = []
        bus.subscribe(SubscriberError, errors.append)

        def boom(event):
            raise ValueError("bad payload")

        bus.subscribe(ContextAdmitted, boom)
        bus.publish(ContextAdmitted(at=2.5, context=mk()))
        assert len(errors) == 1
        failure = errors[0]
        assert failure.at == 2.5
        assert failure.event_type == "ContextAdmitted"
        assert "ValueError: bad payload" in failure.error
        assert "boom" in failure.handler

    def test_broken_error_handler_does_not_recurse(self, mk):
        bus = EventBus()

        def broken_reporter(event):
            raise RuntimeError("the error handler is broken too")

        def boom(event):
            raise RuntimeError("original failure")

        bus.subscribe(SubscriberError, broken_reporter)
        bus.subscribe(ContextReceived, boom)
        bus.publish(ContextReceived(at=0.0, context=mk()))  # must terminate
        assert bus.subscriber_failures == 2

    def test_failures_logged(self, mk, caplog):
        bus = EventBus()
        bus.subscribe(ContextReceived, lambda e: 1 / 0)
        with caplog.at_level(logging.ERROR, logger="repro.middleware"):
            bus.publish(ContextReceived(at=0.0, context=mk()))
        assert any(
            "failed handling ContextReceived" in r.message
            for r in caplog.records
        )

    def test_pipeline_survives_faulty_subscriber(self, mk):
        """End to end: a raising app callback can't kill resolution."""
        from repro.constraints.checker import ConstraintChecker
        from repro.constraints.parser import parse_constraint
        from repro.core.drop_latest import DropLatestStrategy
        from repro.middleware.manager import Middleware

        checker = ConstraintChecker(
            [
                parse_constraint(
                    "velocity",
                    "forall l1 in location, forall l2 in location : "
                    "(same_subject(l1, l2) and before(l1, l2)) "
                    "implies velocity_le(l1, l2, 1.5)",
                )
            ]
        )
        middleware = Middleware(checker, DropLatestStrategy())
        middleware.bus.subscribe(ContextAdmitted, lambda e: 1 / 0)
        for i in range(4):
            ctx = mk(ctx_id=f"c{i}", timestamp=float(i))
            middleware.receive(ctx)
        assert middleware.bus.subscriber_failures > 0
        assert len(middleware.pool) > 0
