"""Unit tests for the simulation clock."""

import pytest

from repro.middleware.clock import SimulationClock


class TestSimulationClock:
    def test_starts_at_given_time(self):
        assert SimulationClock(5.0).now() == 5.0
        assert SimulationClock().now() == 0.0

    def test_advance_by_delta(self):
        clock = SimulationClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_to_absolute(self):
        clock = SimulationClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_no_backwards_travel(self):
        clock = SimulationClock(10.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(9.0)
        with pytest.raises(ValueError, match="negative"):
            clock.advance(-1.0)

    def test_advance_to_same_time_is_noop(self):
        clock = SimulationClock(3.0)
        assert clock.advance_to(3.0) == 3.0

    def test_watchers_fire_on_forward_moves_only(self):
        clock = SimulationClock()
        seen = []
        clock.on_advance(seen.append)
        clock.advance_to(1.0)
        clock.advance_to(1.0)  # no-op
        clock.advance_to(2.0)
        assert seen == [1.0, 2.0]
