"""Unit tests for the middleware manager (the Cabot host)."""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context, ContextState
from repro.core.strategy import make_strategy
from repro.middleware.bus import (
    ContextBuffered,
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
    InconsistencyDetected,
)
from repro.middleware.manager import Middleware


def velocity_checker():
    return ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )


def loc(ctx_id, x, t, lifespan=float("inf"), corrupted=False):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="p",
        value=(float(x), 0.0),
        timestamp=float(t),
        lifespan=lifespan,
        corrupted=corrupted,
    )


class TestReceivePipeline:
    def test_clean_context_admitted_and_used_after_window(self, mk):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-latest"), use_window=2
        )
        delivered = []
        middleware.bus.subscribe(
            ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
        )
        middleware.receive(loc("a", 0.0, 0.0))
        middleware.receive(loc("b", 1.0, 1.0))
        assert delivered == []  # window not yet elapsed
        middleware.receive(loc("c", 2.0, 2.0))
        assert delivered == ["a"]

    def test_flush_uses_everything(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-latest"), use_window=10
        )
        for i in range(3):
            middleware.receive(loc(f"x{i}", float(i), float(i)))
        middleware.flush_uses()
        assert middleware.used_count() == 3

    def test_receive_all_flushes(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-latest"), use_window=10
        )
        middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 1.0, 1.0)])
        assert middleware.used_count() == 2

    def test_inconsistency_event_published(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-latest"), use_window=2
        )
        detected = []
        middleware.bus.subscribe(InconsistencyDetected, detected.append)
        middleware.receive(loc("a", 0.0, 0.0))
        middleware.receive(loc("b", 9.0, 1.0))
        assert len(detected) == 1

    def test_discarded_context_removed_and_never_used(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-latest"), use_window=1
        )
        discarded = []
        middleware.bus.subscribe(
            ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
        )
        middleware.receive_all(
            [loc("a", 0.0, 0.0), loc("b", 9.0, 1.0), loc("c", 1.0, 2.0)]
        )
        assert discarded == ["b"]
        assert len(middleware.resolution.log.delivered) == 2

    def test_drop_bad_buffers_and_publishes(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-bad"), use_window=5
        )
        buffered = []
        middleware.bus.subscribe(
            ContextBuffered, lambda e: buffered.append(e.context.ctx_id)
        )
        middleware.receive(loc("a", 0.0, 0.0))
        assert buffered == ["a"]

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            Middleware(velocity_checker(), make_strategy("drop-bad"), use_window=-1)

    def test_clock_follows_timestamps(self):
        middleware = Middleware(velocity_checker(), make_strategy("drop-bad"))
        middleware.receive(loc("a", 0.0, 5.0))
        assert middleware.clock.now() == 5.0

    def test_window_zero_uses_immediately(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-bad"), use_window=0
        )
        middleware.receive(loc("a", 0.0, 0.0))
        assert middleware.used_count() == 1


class TestExpiry:
    def test_expired_contexts_leave_pool_before_use(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-bad"), use_window=50
        )
        expired = []
        middleware.bus.subscribe(
            ContextExpired, lambda e: expired.append(e.context.ctx_id)
        )
        middleware.receive(loc("short", 0.0, 0.0, lifespan=1.0))
        middleware.receive(loc("later", 1.0, 10.0))
        assert expired == ["short"]
        assert middleware.pool.get("short") is None
        middleware.flush_uses()
        # The expired context was never used.
        assert middleware.used_count() == 1

    def test_expired_context_inconsistencies_resolved(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-bad"), use_window=50
        )
        middleware.receive(loc("a", 0.0, 0.0, lifespan=5.0))
        middleware.receive(loc("b", 9.0, 1.0))  # IC (a, b) tracked
        assert len(middleware.strategy.delta) == 1
        middleware.receive(loc("c", 9.5, 10.0))  # a expires here
        assert middleware.strategy.delta.count_of(
            middleware.pool.get("b")
        ) == 0


class TestAvailability:
    def test_available_contexts_reflect_lifecycle(self):
        middleware = Middleware(
            velocity_checker(), make_strategy("drop-bad"), use_window=1
        )
        middleware.receive(loc("a", 0.0, 0.0))
        assert middleware.available_contexts() == []  # still buffered
        middleware.receive(loc("b", 1.0, 1.0))  # uses a
        available = middleware.available_contexts()
        assert [c.ctx_id for c in available] == ["a"]


class TestPlugIn:
    def test_services_attach_once(self):
        from repro.middleware.service import MiddlewareService

        class Probe(MiddlewareService):
            name = "probe"

            def __init__(self):
                self.attached_to = None

            def on_attach(self, middleware):
                self.attached_to = middleware

        middleware = Middleware(velocity_checker(), make_strategy("drop-bad"))
        probe = Probe()
        middleware.plug_in(probe)
        assert probe.attached_to is middleware
        with pytest.raises(ValueError):
            middleware.plug_in(probe)
