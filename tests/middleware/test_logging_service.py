"""Tests for the logging plug-in service."""

import logging

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.logging_service import LoggingService
from repro.middleware.manager import Middleware


def loc(ctx_id, x, t):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="p",
        value=(float(x), 0.0),
        timestamp=float(t),
    )


@pytest.fixture
def middleware():
    checker = ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )
    return Middleware(checker, make_strategy("drop-latest"), use_window=1)


class TestLoggingService:
    def test_lifecycle_events_logged(self, middleware, caplog):
        middleware.plug_in(LoggingService())
        with caplog.at_level(logging.DEBUG, logger="repro.middleware"):
            middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 1.0, 1.0)])
        text = caplog.text
        assert "received a" in text
        assert "admitted a" in text
        assert "delivered a" in text

    def test_inconsistency_and_discard_at_info(self, middleware, caplog):
        middleware.plug_in(LoggingService())
        with caplog.at_level(logging.INFO, logger="repro.middleware"):
            middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 9.0, 1.0)])
        info_messages = [
            r.message for r in caplog.records if r.levelno == logging.INFO
        ]
        assert any("inconsistency velocity" in m for m in info_messages)
        assert any("discarded b" in m for m in info_messages)
        # Debug chatter is not at INFO.
        assert not any("received" in m for m in info_messages)

    def test_custom_logger(self, middleware, caplog):
        logger = logging.getLogger("my.app")
        middleware.plug_in(LoggingService(logger=logger))
        with caplog.at_level(logging.DEBUG, logger="my.app"):
            middleware.receive(loc("a", 0.0, 0.0))
        assert any(r.name == "my.app" for r in caplog.records)


class TestDetachReattach:
    def test_detach_unsubscribes_and_reattach_logs_once(self, middleware, caplog):
        service = LoggingService()
        middleware.plug_in(service)
        detached = middleware.unplug("logging")
        assert detached is service

        # Events after detach produce no log lines.
        with caplog.at_level(logging.DEBUG, logger="repro.middleware"):
            middleware.receive_all([loc("a", 0.0, 0.0)])
        assert "received a" not in caplog.text

        # Re-attaching to a fresh manager logs each event exactly once
        # (a stale subscription left behind would double every line).
        checker = ConstraintChecker([])
        fresh = Middleware(checker, make_strategy("drop-latest"), use_window=1)
        fresh.plug_in(service)
        caplog.clear()
        with caplog.at_level(logging.DEBUG, logger="repro.middleware"):
            fresh.receive_all([loc("b", 0.0, 0.0)])
        received_lines = [
            r.message for r in caplog.records if "received b" in r.message
        ]
        assert len(received_lines) == 1
