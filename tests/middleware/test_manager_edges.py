"""Edge cases of the middleware manager contract."""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.manager import Middleware


def checker():
    return ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )


def loc(ctx_id, x, t):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="p",
        value=(float(x), 0.0),
        timestamp=float(t),
    )


class TestDuplicateIds:
    def test_duplicate_live_context_id_is_refused(self):
        """Re-receiving a live id is an at-least-once re-delivery: the
        middleware refuses it with a ``ContextDuplicate`` event (the
        original, already-checked instance stays authoritative) instead
        of crashing the receive stage on the pool's unique-id
        invariant."""
        from repro.middleware.bus import ContextDuplicate

        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_window=10
        )
        refused = []
        middleware.bus.subscribe(
            ContextDuplicate, lambda e: refused.append(e.context)
        )
        original = loc("a", 0.0, 0.0)
        middleware.receive(original)
        middleware.receive(loc("a", 1.0, 1.0))  # re-delivery, new payload
        assert [c.ctx_id for c in refused] == ["a"]
        assert middleware.pool.get("a") is original


class TestOutOfOrderTimestamps:
    def test_late_contexts_are_clamped_to_now(self):
        """A context with an older timestamp than the clock does not
        move time backwards; it is processed at the current time."""
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_window=10
        )
        middleware.receive(loc("a", 0.0, 10.0))
        middleware.receive(loc("b", 0.5, 5.0))  # straggler
        assert middleware.clock.now() == 10.0
        assert middleware.pool.get("b") is not None


class TestIrrelevantContexts:
    def test_irrelevant_types_flow_straight_through(self):
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_window=0
        )
        other = Context(
            ctx_id="t1",
            ctx_type="temperature",
            subject="room",
            value=21.5,
            timestamp=0.0,
        )
        middleware.receive(other)
        assert middleware.resolution.log.delivered == [other]


class TestUsedCount:
    def test_used_count_tracks_distinct_contexts(self):
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_window=0
        )
        a = loc("a", 0.0, 0.0)
        middleware.receive(a)
        middleware.use(a)  # idempotent double use
        assert middleware.used_count() == 1


class TestEmptyStream:
    def test_receive_all_empty(self):
        middleware = Middleware(checker(), make_strategy("drop-bad"))
        middleware.receive_all([])
        assert middleware.used_count() == 0
        assert len(middleware.pool) == 0
