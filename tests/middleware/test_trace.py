"""Tests for JSONL trace record/replay, including a round-trip property."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import Context
from repro.middleware.trace import (
    dump_context,
    load_context,
    read_trace,
    write_trace,
)


class TestDumpLoad:
    def test_roundtrip_basic(self, mk):
        ctx = mk(
            ctx_id="a",
            ctx_type="badge",
            subject="peter",
            value="office-1",
            timestamp=4.5,
            lifespan=60.0,
            corrupted=True,
            attributes=(("floor", 2),),
        )
        assert load_context(dump_context(ctx)) == ctx

    def test_position_tuples_survive(self, mk):
        ctx = mk(value=(1.5, 2.5))
        restored = load_context(dump_context(ctx))
        assert restored.position == (1.5, 2.5)

    def test_infinite_lifespan_survives(self, mk):
        ctx = mk(lifespan=math.inf)
        restored = load_context(dump_context(ctx))
        assert math.isinf(restored.lifespan)

    def test_unserializable_value_raises(self, mk):
        ctx = mk(value=object())
        with pytest.raises(ValueError, match="not trace-serializable"):
            dump_context(ctx)


class TestFileRoundtrip:
    def test_write_read(self, mk, tmp_path):
        contexts = [
            mk(ctx_id=f"c{i}", value=(float(i), 0.0), timestamp=float(i))
            for i in range(5)
        ]
        path = tmp_path / "trace.jsonl"
        assert write_trace(contexts, path) == 5
        assert read_trace(path) == contexts

    def test_blank_lines_tolerated(self, mk, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(dump_context(mk(ctx_id="x")) + "\n\n\n")
        assert [c.ctx_id for c in read_trace(path)] == ["x"]

    def test_real_workload_roundtrip(self, tmp_path):
        from repro.apps.rfid_anomalies import RFIDAnomaliesApp

        contexts = RFIDAnomaliesApp().generate_workload(0.2, seed=1, items=3)
        path = tmp_path / "rfid.jsonl"
        write_trace(contexts, path)
        assert read_trace(path) == contexts


_json_values = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)


@settings(max_examples=200, deadline=None)
@given(
    ctx_id=st.text(min_size=1, max_size=8),
    ctx_type=st.sampled_from(["location", "badge", "rfid_read"]),
    subject=st.text(max_size=8),
    value=_json_values,
    timestamp=st.floats(
        min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    corrupted=st.booleans(),
)
def test_dump_load_roundtrip_property(
    ctx_id, ctx_type, subject, value, timestamp, corrupted
):
    ctx = Context(
        ctx_id=ctx_id,
        ctx_type=ctx_type,
        subject=subject,
        value=value,
        timestamp=timestamp,
        corrupted=corrupted,
    )
    assert load_context(dump_context(ctx)) == ctx
