"""Tests for JSONL trace record/replay, including a round-trip property."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.context import Context
from repro.middleware.trace import (
    dump_context,
    load_context,
    read_trace,
    write_trace,
)


class TestDumpLoad:
    def test_roundtrip_basic(self, mk):
        ctx = mk(
            ctx_id="a",
            ctx_type="badge",
            subject="peter",
            value="office-1",
            timestamp=4.5,
            lifespan=60.0,
            corrupted=True,
            attributes=(("floor", 2),),
        )
        assert load_context(dump_context(ctx)) == ctx

    def test_position_tuples_survive(self, mk):
        ctx = mk(value=(1.5, 2.5))
        restored = load_context(dump_context(ctx))
        assert restored.position == (1.5, 2.5)

    def test_infinite_lifespan_survives(self, mk):
        ctx = mk(lifespan=math.inf)
        restored = load_context(dump_context(ctx))
        assert math.isinf(restored.lifespan)

    def test_unserializable_value_raises(self, mk):
        ctx = mk(value=object())
        with pytest.raises(ValueError, match="not trace-serializable"):
            dump_context(ctx)


class TestFileRoundtrip:
    def test_write_read(self, mk, tmp_path):
        contexts = [
            mk(ctx_id=f"c{i}", value=(float(i), 0.0), timestamp=float(i))
            for i in range(5)
        ]
        path = tmp_path / "trace.jsonl"
        assert write_trace(contexts, path) == 5
        assert list(read_trace(path)) == contexts

    def test_blank_lines_tolerated(self, mk, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(dump_context(mk(ctx_id="x")) + "\n\n\n")
        assert [c.ctx_id for c in read_trace(path)] == ["x"]

    def test_real_workload_roundtrip(self, tmp_path):
        from repro.apps.rfid_anomalies import RFIDAnomaliesApp

        contexts = RFIDAnomaliesApp().generate_workload(0.2, seed=1, items=3)
        path = tmp_path / "rfid.jsonl"
        write_trace(contexts, path)
        assert list(read_trace(path)) == contexts

    def test_read_trace_is_lazy(self, mk, tmp_path):
        from collections.abc import Iterator

        path = tmp_path / "trace.jsonl"
        write_trace([mk(ctx_id=f"c{i}") for i in range(3)], path)
        reader = read_trace(path)
        assert isinstance(reader, Iterator)
        assert next(reader).ctx_id == "c0"

    def test_read_trace_opens_file_on_first_iteration(self, tmp_path):
        reader = read_trace(tmp_path / "missing.jsonl")
        with pytest.raises(FileNotFoundError):
            next(reader)


_json_values = st.one_of(
    st.text(max_size=12),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.none(),
)


@settings(max_examples=200, deadline=None)
@given(
    ctx_id=st.text(min_size=1, max_size=8),
    ctx_type=st.sampled_from(["location", "badge", "rfid_read"]),
    subject=st.text(max_size=8),
    value=_json_values,
    timestamp=st.floats(
        min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    corrupted=st.booleans(),
)
def test_dump_load_roundtrip_property(
    ctx_id, ctx_type, subject, value, timestamp, corrupted
):
    ctx = Context(
        ctx_id=ctx_id,
        ctx_type=ctx_type,
        subject=subject,
        value=value,
        timestamp=timestamp,
        corrupted=corrupted,
    )
    assert load_context(dump_context(ctx)) == ctx


_positions = st.tuples(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
_lifespans = st.one_of(
    st.just(math.inf),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
)
_attributes = st.lists(
    st.tuples(st.text(min_size=1, max_size=6), _json_values),
    max_size=3,
).map(tuple)


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    values=st.lists(st.one_of(_json_values, _positions), min_size=1,
                    max_size=8),
    lifespan=_lifespans,
    attributes=_attributes,
)
def test_file_roundtrip_property(values, lifespan, attributes, tmp_path):
    """write_trace then read_trace restores every context exactly.

    Exercises the two lossy-looking JSON corners: infinite lifespans
    (serialized as the string ``"Infinity"``) and tuple positions
    (serialized as lists, restored as tuples), plus attribute tuples.
    """
    contexts = [
        Context(
            ctx_id=f"c{i}",
            ctx_type="location",
            subject=f"s{i % 2}",
            value=value,
            timestamp=float(i),
            lifespan=lifespan,
            corrupted=i % 3 == 0,
            attributes=attributes,
        )
        for i, value in enumerate(values)
    ]
    path = tmp_path / "prop.jsonl"
    assert write_trace(contexts, path) == len(contexts)
    restored = list(read_trace(path))
    assert restored == contexts
    for original, back in zip(contexts, restored):
        assert type(back.value) is type(original.value)
        assert back.attributes == original.attributes
        assert math.isinf(back.lifespan) == math.isinf(original.lifespan)
