"""Tests for the time-based use window (checking-sensitive period)."""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.manager import Middleware


def checker():
    return ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )


def loc(ctx_id, x, t):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="p",
        value=(float(x), 0.0),
        timestamp=float(t),
    )


class TestTimeBasedWindow:
    def test_contexts_used_after_delay(self):
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_delay=5.0
        )
        middleware.receive(loc("a", 0.0, 0.0))
        assert middleware.used_count() == 0
        middleware.receive(loc("b", 1.0, 2.0))
        assert middleware.used_count() == 0
        middleware.receive(loc("c", 2.0, 6.0))  # a due at t=5
        assert middleware.used_count() == 1

    def test_due_contexts_used_before_newcomer_checked(self):
        """A context past its delay leaves checking scope before the
        next arrival is detected against the pool."""
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_delay=3.0
        )
        middleware.receive(loc("a", 0.0, 0.0))
        # b arrives at t=10: a was used (and left checking) first, so
        # the wild jump a->b is never even checked.
        middleware.receive(loc("b", 50.0, 10.0))
        assert middleware.resolution.log.detected == []
        assert middleware.used_count() == 1

    def test_zero_delay_uses_immediately(self):
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_delay=0.0
        )
        middleware.receive(loc("a", 0.0, 0.0))
        middleware.receive(loc("b", 1.0, 2.0))
        assert middleware.used_count() == 2

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="use_delay"):
            Middleware(checker(), make_strategy("drop-bad"), use_delay=-1.0)

    def test_flush_still_drains_everything(self):
        middleware = Middleware(
            checker(), make_strategy("drop-bad"), use_delay=100.0
        )
        middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 1.0, 2.0)])
        assert middleware.used_count() == 2

    def test_delay_takes_precedence_over_count_window(self):
        middleware = Middleware(
            checker(),
            make_strategy("drop-bad"),
            use_window=1,
            use_delay=100.0,
        )
        for i in range(5):
            middleware.receive(loc(f"x{i}", float(i), float(i)))
        # Despite use_window=1, nothing is due before t=100.
        assert middleware.used_count() == 0
