"""Unit tests for the context pool."""

import pytest

from repro.middleware.pool import ContextPool


class TestContextPool:
    def test_add_and_lookup(self, mk):
        pool = ContextPool()
        ctx = mk(ctx_id="a")
        pool.add(ctx)
        assert ctx in pool
        assert pool.get("a") is ctx
        assert len(pool) == 1

    def test_duplicate_ids_rejected(self, mk):
        pool = ContextPool()
        pool.add(mk(ctx_id="a"))
        with pytest.raises(ValueError, match="already in pool"):
            pool.add(mk(ctx_id="a"))

    def test_remove(self, mk):
        pool = ContextPool()
        ctx = mk()
        pool.add(ctx)
        assert pool.remove(ctx)
        assert not pool.remove(ctx)
        assert ctx not in pool

    def test_contains_rejects_stale_instance_with_reused_id(self, mk):
        # A different context reusing a live id (e.g. a stale instance
        # re-presented by a replayed batch) is NOT in the pool -- only
        # the stored object or an equal copy is.
        pool = ContextPool()
        current = mk(ctx_id="a", value=(1.0, 1.0))
        pool.add(current)
        stale = mk(ctx_id="a", value=(9.0, 9.0))
        assert stale not in pool
        equal_copy = mk(ctx_id="a", value=(1.0, 1.0))
        assert equal_copy in pool
        assert current in pool

    def test_iteration_in_arrival_order(self, mk):
        pool = ContextPool()
        contexts = [mk(ctx_id=f"c{i}") for i in range(5)]
        for ctx in contexts:
            pool.add(ctx)
        assert pool.contents() == contexts

    def test_arrival_order_survives_interior_removes(self, mk):
        pool = ContextPool()
        contexts = [mk(ctx_id=f"c{i}") for i in range(6)]
        for ctx in contexts:
            pool.add(ctx)
        pool.remove(contexts[1])
        pool.remove(contexts[4])
        assert pool.contents() == [
            contexts[0], contexts[2], contexts[3], contexts[5]
        ]
        readded = mk(ctx_id="c1")
        pool.add(readded)  # re-adding appends at the back, not in place
        assert pool.contents()[-1] is readded

    def test_expire(self, mk):
        pool = ContextPool()
        stale = mk(ctx_id="stale", timestamp=0.0, lifespan=5.0)
        fresh = mk(ctx_id="fresh", timestamp=4.0, lifespan=5.0)
        pool.add(stale)
        pool.add(fresh)
        expired = pool.expire(now=6.0)
        assert expired == [stale]
        assert pool.contents() == [fresh]

    def test_query_filters(self, mk):
        pool = ContextPool()
        loc = mk(ctx_id="l", ctx_type="location", subject="peter")
        badge = mk(ctx_id="b", ctx_type="badge", subject="alice")
        pool.add(loc)
        pool.add(badge)
        assert pool.by_type("location") == [loc]
        assert pool.by_subject("alice") == [badge]
        assert pool.query(ctx_type="badge", subject="alice") == [badge]
        assert pool.query(ctx_type="badge", subject="peter") == []
        assert pool.query(predicate=lambda c: c.ctx_id == "l") == [loc]

    def test_latest(self, mk):
        pool = ContextPool()
        old = mk(ctx_id="old", ctx_type="badge", timestamp=1.0)
        new = mk(ctx_id="new", ctx_type="badge", timestamp=9.0)
        pool.add(new)
        pool.add(old)
        assert pool.latest(ctx_type="badge") is new
        assert pool.latest(ctx_type="location") is None

    def test_clear(self, mk):
        pool = ContextPool()
        pool.add(mk())
        pool.clear()
        assert len(pool) == 0
