"""Unit tests for the context model."""

import math

import pytest

from repro.core.context import (
    INFINITE_LIFESPAN,
    Context,
    ContextFactory,
    ContextState,
)


class TestContext:
    def test_basic_fields(self, mk):
        ctx = mk(ctx_id="c1", ctx_type="rfid", subject="tag-1", value="dock")
        assert ctx.ctx_id == "c1"
        assert ctx.ctx_type == "rfid"
        assert ctx.subject == "tag-1"
        assert ctx.value == "dock"
        assert not ctx.corrupted

    def test_contexts_are_immutable(self, mk):
        ctx = mk()
        with pytest.raises(AttributeError):
            ctx.value = (1.0, 1.0)

    def test_negative_lifespan_rejected(self, mk):
        with pytest.raises(ValueError):
            mk(lifespan=-1.0)

    def test_expiry_is_timestamp_plus_lifespan(self, mk):
        ctx = mk(timestamp=10.0, lifespan=5.0)
        assert ctx.expiry == 15.0
        assert not ctx.is_expired(14.999)
        assert ctx.is_expired(15.0)

    def test_infinite_lifespan_never_expires(self, mk):
        ctx = mk(timestamp=0.0, lifespan=INFINITE_LIFESPAN)
        assert not ctx.is_expired(1e18)

    def test_position_of_location_value(self, mk):
        ctx = mk(value=(3, 4))
        assert ctx.position == (3.0, 4.0)

    def test_position_of_non_location_raises(self, mk):
        ctx = mk(value="dock")
        with pytest.raises(TypeError):
            ctx.position

    def test_distance(self, mk):
        a = mk(value=(0.0, 0.0))
        b = mk(value=(3.0, 4.0))
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_attributes_lookup(self, mk):
        ctx = mk(attributes=(("floor", 2), ("reader", "r1")))
        assert ctx.attr("floor") == 2
        assert ctx.attr("reader") == "r1"
        assert ctx.attr("missing") is None
        assert ctx.attr("missing", "dflt") == "dflt"

    def test_attributes_accept_mapping(self):
        ctx = Context(
            ctx_id="x",
            ctx_type="t",
            subject="s",
            value=1,
            timestamp=0.0,
            attributes={"b": 2, "a": 1},
        )
        assert ctx.attr("a") == 1
        assert ctx.attr("b") == 2
        # Stored canonically sorted, so equal contexts hash equal.
        assert ctx.attributes == (("a", 1), ("b", 2))

    def test_contexts_hashable_and_equal_by_value(self, mk):
        a = mk(ctx_id="same", timestamp=1.0)
        b = mk(ctx_id="same", timestamp=1.0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestContextState:
    def test_terminal_states(self):
        assert ContextState.CONSISTENT.is_terminal()
        assert ContextState.INCONSISTENT.is_terminal()
        assert not ContextState.UNDECIDED.is_terminal()
        assert not ContextState.BAD.is_terminal()


class TestContextFactory:
    def test_ids_are_unique_and_prefixed(self):
        factory = ContextFactory(prefix="run1")
        a = factory.make("location", "p", (0, 0), 0.0)
        b = factory.make("location", "p", (1, 1), 1.0)
        assert a.ctx_id != b.ctx_id
        assert a.ctx_id.startswith("run1-")

    def test_explicit_id_respected(self):
        factory = ContextFactory()
        ctx = factory.make("location", "p", (0, 0), 0.0, ctx_id="d3")
        assert ctx.ctx_id == "d3"

    def test_kwargs_passed_through(self):
        factory = ContextFactory()
        ctx = factory.make(
            "badge",
            "alice",
            "office-1",
            5.0,
            lifespan=60.0,
            source="sensor-7",
            corrupted=True,
            attributes={"rssi": -50},
        )
        assert ctx.lifespan == 60.0
        assert ctx.source == "sensor-7"
        assert ctx.corrupted
        assert ctx.attr("rssi") == -50
