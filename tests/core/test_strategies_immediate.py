"""Unit tests for the immediate baseline strategies."""

import random

import pytest

from repro.core.context import ContextState
from repro.core.drop_all import DropAllStrategy
from repro.core.drop_latest import DropLatestStrategy
from repro.core.drop_random import DropRandomStrategy
from repro.core.inconsistency import Inconsistency
from repro.core.oracle import OptimalStrategy
from repro.core.user_specified import (
    UserSpecifiedStrategy,
    freshness_policy,
    source_trust_policy,
)


def inc(*contexts, constraint="c"):
    return Inconsistency(frozenset(contexts), constraint=constraint)


class TestDropLatest:
    def test_discards_latest_of_inconsistency(self, mk):
        strategy = DropLatestStrategy()
        d2 = mk(ctx_id="d2", timestamp=2.0)
        strategy.on_context_added(d2, [])
        d3 = mk(ctx_id="d3", timestamp=3.0)
        outcome = strategy.on_context_added(d3, [inc(d2, d3)])
        assert outcome.discarded == (d3,)
        assert outcome.admitted == ()
        assert strategy.state_of(d3) == ContextState.INCONSISTENT
        assert strategy.state_of(d2) == ContextState.CONSISTENT

    def test_admits_clean_context(self, mk):
        strategy = DropLatestStrategy()
        ctx = mk()
        outcome = strategy.on_context_added(ctx, [])
        assert outcome.admitted == (ctx,)
        assert outcome.discarded == ()
        assert not outcome.buffered

    def test_scenario_b_blames_wrong_context(self, mk):
        """Scenario B: d3 slipped in; (d3, d4) blames d4 (Sec 2.2)."""
        strategy = DropLatestStrategy()
        d3 = mk(ctx_id="d3", timestamp=3.0)
        strategy.on_context_added(d3, [])
        d4 = mk(ctx_id="d4", timestamp=4.0)
        outcome = strategy.on_context_added(d4, [inc(d3, d4)])
        assert outcome.discarded == (d4,)
        assert strategy.state_of(d3) == ContextState.CONSISTENT

    def test_vanished_inconsistency_skipped(self, mk):
        """Once the victim of IC1 is gone, IC2 involving it vanishes."""
        strategy = DropLatestStrategy()
        d2 = mk(ctx_id="d2", timestamp=2.0)
        d3 = mk(ctx_id="d3", timestamp=3.0)
        strategy.on_context_added(d2, [])
        outcome = strategy.on_context_added(
            d3, [inc(d2, d3, constraint="x"), inc(d2, d3, constraint="y")]
        )
        # d3 discarded once; second IC vanished rather than re-blaming.
        assert outcome.discarded == (d3,)
        assert strategy.inconsistencies_seen == 1

    def test_use_reports_admission_state(self, mk):
        strategy = DropLatestStrategy()
        good, bad = mk(timestamp=1.0), mk(timestamp=2.0)
        strategy.on_context_added(good, [])
        strategy.on_context_added(bad, [inc(good, bad)])
        assert strategy.on_context_used(good).delivered
        assert not strategy.on_context_used(bad).delivered

    def test_unknown_context_used_is_delivered(self, mk):
        strategy = DropLatestStrategy()
        assert strategy.on_context_used(mk()).delivered


class TestDropAll:
    def test_discards_every_participant(self, mk):
        strategy = DropAllStrategy()
        d2 = mk(ctx_id="d2", timestamp=2.0)
        strategy.on_context_added(d2, [])
        d3 = mk(ctx_id="d3", timestamp=3.0)
        outcome = strategy.on_context_added(d3, [inc(d2, d3)])
        assert set(outcome.discarded) == {d2, d3}
        assert strategy.state_of(d2) == ContextState.INCONSISTENT

    def test_revokes_admitted_context(self, mk):
        """d2 was already consistent; drop-all still removes it."""
        strategy = DropAllStrategy()
        d2 = mk(ctx_id="d2", timestamp=2.0)
        strategy.on_context_added(d2, [])
        assert strategy.state_of(d2) == ContextState.CONSISTENT
        d3 = mk(ctx_id="d3", timestamp=3.0)
        strategy.on_context_added(d3, [inc(d2, d3)])
        assert strategy.state_of(d2) == ContextState.INCONSISTENT


class TestDropRandom:
    def test_discards_exactly_one_per_inconsistency(self, mk):
        strategy = DropRandomStrategy(rng=random.Random(1))
        a = mk(timestamp=1.0)
        strategy.on_context_added(a, [])
        b = mk(timestamp=2.0)
        outcome = strategy.on_context_added(b, [inc(a, b)])
        assert len(outcome.discarded) == 1
        assert outcome.discarded[0] in (a, b)

    def test_deterministic_given_seed(self, mk):
        def run(seed):
            strategy = DropRandomStrategy(rng=random.Random(seed))
            a = mk(ctx_id="a", timestamp=1.0)
            b = mk(ctx_id="b", timestamp=2.0)
            strategy.on_context_added(a, [])
            return strategy.on_context_added(b, [inc(a, b)]).discarded

        assert run(7) == run(7)


class TestUserSpecified:
    def test_default_freshness_policy_keeps_newest(self, mk):
        strategy = UserSpecifiedStrategy()
        old = mk(ctx_id="old", timestamp=1.0)
        new = mk(ctx_id="new", timestamp=2.0)
        strategy.on_context_added(old, [])
        outcome = strategy.on_context_added(new, [inc(old, new)])
        assert outcome.discarded == (old,)

    def test_source_trust_policy(self, mk):
        trust = source_trust_policy({"good-sensor": 0.9, "flaky-sensor": 0.1})
        strategy = UserSpecifiedStrategy(preference=trust)
        trusted = mk(ctx_id="a", source="good-sensor", timestamp=1.0)
        flaky = mk(ctx_id="b", source="flaky-sensor", timestamp=2.0)
        strategy.on_context_added(trusted, [])
        outcome = strategy.on_context_added(flaky, [inc(trusted, flaky)])
        assert outcome.discarded == (flaky,)

    def test_preference_ties_broken_by_id(self, mk):
        strategy = UserSpecifiedStrategy(preference=lambda c: 0.0)
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=1.0)
        strategy.on_context_added(a, [])
        outcome = strategy.on_context_added(b, [inc(a, b)])
        assert outcome.discarded == (a,)


class TestOptimal:
    def test_discards_corrupted_on_arrival(self, mk):
        strategy = OptimalStrategy()
        bad = mk(corrupted=True)
        outcome = strategy.on_context_added(bad, [])
        assert outcome.discarded == (bad,)

    def test_keeps_expected_even_in_inconsistency(self, mk):
        strategy = OptimalStrategy()
        good = mk(ctx_id="g", timestamp=1.0)
        strategy.on_context_added(good, [])
        bad = mk(ctx_id="b", timestamp=2.0, corrupted=True)
        outcome = strategy.on_context_added(bad, [inc(good, bad)])
        assert outcome.discarded == (bad,)
        assert strategy.state_of(good) == ContextState.CONSISTENT

    def test_choose_victims_targets_corrupted(self, mk):
        strategy = OptimalStrategy()
        good = mk(ctx_id="g")
        bad = mk(ctx_id="b", corrupted=True)
        assert strategy.choose_victims(bad, inc(good, bad)) == (bad,)
