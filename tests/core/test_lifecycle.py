"""Unit tests for the four-state context life cycle (Figure 8)."""

import pytest

from repro.core.context import ContextState
from repro.core.lifecycle import ContextRecord, LifecycleError, LifecycleTracker


class TestContextRecord:
    def test_initial_state_is_undecided(self, mk):
        record = ContextRecord(context=mk())
        assert record.state == ContextState.UNDECIDED
        assert not record.is_decided

    @pytest.mark.parametrize(
        "target",
        [ContextState.CONSISTENT, ContextState.BAD, ContextState.INCONSISTENT],
    )
    def test_legal_transitions_from_undecided(self, mk, target):
        record = ContextRecord(context=mk())
        record.transition(target, at=1.0)
        assert record.state == target

    def test_bad_to_inconsistent(self, mk):
        record = ContextRecord(context=mk())
        record.transition(ContextState.BAD)
        record.transition(ContextState.INCONSISTENT, at=2.0)
        assert record.is_discarded
        assert record.decided_at == 2.0

    def test_consistent_to_inconsistent_allowed_for_baselines(self, mk):
        """Drop-all revokes admitted contexts (paper Scenario A: d2)."""
        record = ContextRecord(context=mk())
        record.transition(ContextState.CONSISTENT)
        record.transition(ContextState.INCONSISTENT)
        assert record.is_discarded

    @pytest.mark.parametrize(
        "first,second",
        [
            (ContextState.INCONSISTENT, ContextState.CONSISTENT),
            (ContextState.INCONSISTENT, ContextState.BAD),
            (ContextState.CONSISTENT, ContextState.BAD),
            (ContextState.BAD, ContextState.CONSISTENT),
        ],
    )
    def test_illegal_transitions_raise(self, mk, first, second):
        record = ContextRecord(context=mk())
        record.transition(first)
        with pytest.raises(LifecycleError):
            record.transition(second)

    def test_self_transition_is_noop(self, mk):
        record = ContextRecord(context=mk())
        record.transition(ContextState.BAD)
        record.transition(ContextState.BAD)
        assert record.state == ContextState.BAD
        # No duplicate history entry for the no-op.
        assert [s for s, _ in record.history] == [
            ContextState.UNDECIDED,
            ContextState.BAD,
        ]

    def test_history_records_times(self, mk):
        record = ContextRecord(context=mk(), buffered_at=0.5)
        record.transition(ContextState.BAD, at=1.0)
        record.transition(ContextState.INCONSISTENT, at=2.0)
        assert record.history == [
            (ContextState.UNDECIDED, 0.5),
            (ContextState.BAD, 1.0),
            (ContextState.INCONSISTENT, 2.0),
        ]

    def test_availability(self, mk):
        record = ContextRecord(context=mk())
        assert not record.is_available
        record.transition(ContextState.CONSISTENT)
        assert record.is_available


class TestLifecycleTracker:
    def test_register_and_lookup(self, mk):
        tracker = LifecycleTracker()
        ctx = mk()
        record = tracker.register(ctx, at=1.0)
        assert tracker.known(ctx)
        assert tracker.record_of(ctx) is record
        assert tracker.state_of(ctx) == ContextState.UNDECIDED

    def test_register_is_idempotent(self, mk):
        tracker = LifecycleTracker()
        ctx = mk()
        first = tracker.register(ctx)
        second = tracker.register(ctx)
        assert first is second
        assert len(tracker) == 1

    def test_unknown_context_raises(self, mk):
        tracker = LifecycleTracker()
        with pytest.raises(KeyError):
            tracker.record_of(mk())

    def test_set_state_validates(self, mk):
        tracker = LifecycleTracker()
        ctx = mk()
        tracker.register(ctx)
        tracker.set_state(ctx, ContextState.INCONSISTENT)
        with pytest.raises(LifecycleError):
            tracker.set_state(ctx, ContextState.CONSISTENT)

    def test_in_state_sorted_by_id(self, mk):
        tracker = LifecycleTracker()
        b, a = mk(ctx_id="b"), mk(ctx_id="a")
        tracker.register(b)
        tracker.register(a)
        tracker.set_state(b, ContextState.BAD)
        undecided = tracker.in_state(ContextState.UNDECIDED)
        assert [r.context.ctx_id for r in undecided] == ["a"]
        assert [r.context.ctx_id for r in tracker.in_state(ContextState.BAD)] == ["b"]

    def test_contains(self, mk):
        tracker = LifecycleTracker()
        ctx = mk()
        assert ctx not in tracker
        tracker.register(ctx)
        assert ctx in tracker
        assert "string" not in tracker
