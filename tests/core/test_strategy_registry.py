"""Unit tests for the strategy registry and the base-class contract."""

import pytest

import repro.core  # noqa: F401 -- registers the built-ins
from repro.core.drop_bad import DropBadStrategy
from repro.core.oracle import OptimalStrategy
from repro.core.strategy import (
    ImmediateStrategy,
    make_strategy,
    register_strategy,
    strategy_names,
)


class TestRegistry:
    def test_all_paper_strategies_registered(self):
        names = strategy_names()
        for expected in (
            "drop-latest",
            "drop-all",
            "drop-random",
            "user-specified",
            "drop-bad",
            "opt-r",
        ):
            assert expected in names

    def test_make_strategy_returns_fresh_instances(self):
        a = make_strategy("drop-bad")
        b = make_strategy("drop-bad")
        assert isinstance(a, DropBadStrategy)
        assert a is not b

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("drop-everything")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("drop-bad")(DropBadStrategy)

    def test_kwargs_forwarded(self):
        strategy = make_strategy("drop-bad", discard_on_tie=False)
        assert strategy._discard_on_tie is False


class TestBaseContract:
    def test_names_match_registry_keys(self):
        for name in ("drop-latest", "drop-all", "drop-bad", "opt-r"):
            assert make_strategy(name).name == name

    def test_immediate_strategies_check_against_consistent(self, mk):
        strategy = make_strategy("drop-latest")
        ctx = mk()
        strategy.on_context_added(ctx, [])
        assert strategy.participates_in_checking(ctx)

    def test_oracle_is_immediate(self):
        assert isinstance(make_strategy("opt-r"), ImmediateStrategy)
        assert isinstance(make_strategy("opt-r"), OptimalStrategy)
