"""Unit tests for inconsistencies and the tracked set Δ."""

import pytest

from repro.core.inconsistency import Inconsistency, TrackedInconsistencies


def inc(*contexts, constraint="c", at=0.0):
    return Inconsistency(frozenset(contexts), constraint=constraint, detected_at=at)


class TestInconsistency:
    def test_requires_contexts(self):
        with pytest.raises(ValueError):
            Inconsistency(frozenset())

    def test_involves(self, mk):
        a, b, c = mk(), mk(), mk()
        i = inc(a, b)
        assert i.involves(a) and i.involves(b)
        assert not i.involves(c)

    def test_key_identity_ignores_detection_time(self, mk):
        a, b = mk(ctx_id="a"), mk(ctx_id="b")
        assert inc(a, b, at=1.0).key == inc(a, b, at=9.0).key
        assert inc(a, b, constraint="x").key != inc(a, b, constraint="y").key

    def test_latest_context_by_timestamp(self, mk):
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=3.0)
        assert inc(a, b).latest_context() is b

    def test_latest_ties_broken_by_id(self, mk):
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=1.0)
        assert inc(a, b).latest_context().ctx_id == "b"

    def test_len_and_iter(self, mk):
        a, b, c = mk(), mk(), mk()
        i = inc(a, b, c)
        assert len(i) == 3
        assert set(i) == {a, b, c}

    def test_accepts_plain_set(self, mk):
        a, b = mk(), mk()
        i = Inconsistency({a, b})
        assert isinstance(i.contexts, frozenset)


class TestTrackedInconsistencies:
    def test_paper_example_counts(self, mk):
        """Δ = {{d3,d4},{d3,d5}} gives count d3=2, d4=1, d5=1 (Sec 3.2)."""
        d3, d4, d5 = mk(ctx_id="d3"), mk(ctx_id="d4"), mk(ctx_id="d5")
        delta = TrackedInconsistencies()
        delta.add(inc(d3, d4))
        delta.add(inc(d3, d5))
        assert delta.counts() == {d3: 2, d4: 1, d5: 1}
        assert delta.count_of(d3) == 2
        assert delta.count_of(mk(ctx_id="d1")) == 0

    def test_add_is_idempotent(self, mk):
        a, b = mk(), mk()
        delta = TrackedInconsistencies()
        assert delta.add(inc(a, b))
        assert not delta.add(inc(a, b))
        assert len(delta) == 1
        assert delta.count_of(a) == 1

    def test_remove(self, mk):
        a, b = mk(), mk()
        delta = TrackedInconsistencies()
        i = inc(a, b)
        delta.add(i)
        assert delta.remove(i)
        assert not delta.remove(i)
        assert len(delta) == 0
        assert delta.count_of(a) == 0
        assert delta.counts() == {}

    def test_resolve_involving(self, mk):
        a, b, c = mk(ctx_id="a"), mk(ctx_id="b"), mk(ctx_id="c")
        delta = TrackedInconsistencies()
        delta.add(inc(a, b))
        delta.add(inc(a, c))
        delta.add(inc(b, c))
        resolved = delta.resolve_involving(a)
        assert len(resolved) == 2
        assert len(delta) == 1
        assert delta.count_of(a) == 0
        assert delta.count_of(b) == 1

    def test_involving(self, mk):
        a, b, c = mk(), mk(), mk()
        delta = TrackedInconsistencies()
        i1, i2 = inc(a, b), inc(b, c)
        delta.add(i1)
        delta.add(i2)
        assert delta.involving(a) == [i1]
        assert set(x.key for x in delta.involving(b)) == {i1.key, i2.key}

    def test_max_count_contexts(self, mk):
        d3, d4, d5 = mk(ctx_id="d3"), mk(ctx_id="d4"), mk(ctx_id="d5")
        delta = TrackedInconsistencies()
        i1, i2 = inc(d3, d4), inc(d3, d5)
        delta.add(i1)
        delta.add(i2)
        assert delta.max_count_contexts(i1) == [d3]

    def test_max_count_tie_returns_all(self, mk):
        a, b = mk(ctx_id="a"), mk(ctx_id="b")
        delta = TrackedInconsistencies()
        i = inc(a, b)
        delta.add(i)
        assert delta.max_count_contexts(i) == [a, b]

    def test_has_largest_count_counts_ties_as_largest(self, mk):
        a, b = mk(ctx_id="a"), mk(ctx_id="b")
        delta = TrackedInconsistencies()
        i = inc(a, b)
        delta.add(i)
        assert delta.has_largest_count(a, i)
        assert delta.has_largest_count(b, i)

    def test_has_largest_count_false_for_non_member(self, mk):
        a, b, c = mk(), mk(), mk()
        delta = TrackedInconsistencies()
        i = inc(a, b)
        delta.add(i)
        assert not delta.has_largest_count(c, i)

    def test_counts_are_global_across_delta(self, mk):
        """Max-count within an inconsistency uses counts over ALL of Δ."""
        a, b, c = mk(ctx_id="a"), mk(ctx_id="b"), mk(ctx_id="c")
        delta = TrackedInconsistencies()
        i1 = inc(a, b)
        delta.add(i1)
        delta.add(inc(b, c))
        # b leads within i1 thanks to its second inconsistency.
        assert delta.max_count_contexts(i1) == [b]
        assert not delta.has_largest_count(a, i1)

    def test_snapshot_matches_paper_notation(self, mk):
        a, b, c = mk(), mk(), mk()
        delta = TrackedInconsistencies()
        delta.add(inc(a, b))
        delta.add(inc(b, c))
        assert delta.snapshot() == frozenset(
            {frozenset({a, b}), frozenset({b, c})}
        )

    def test_contexts_and_clear(self, mk):
        a, b = mk(), mk()
        delta = TrackedInconsistencies()
        delta.add(inc(a, b))
        assert delta.contexts() == {a, b}
        delta.clear()
        assert len(delta) == 0
        assert delta.contexts() == set()

    def test_contains(self, mk):
        a, b = mk(), mk()
        delta = TrackedInconsistencies()
        i = inc(a, b)
        delta.add(i)
        assert i in delta
        assert inc(a, b, constraint="other") not in delta
        assert "not an inconsistency" not in delta
