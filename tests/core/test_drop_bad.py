"""Unit tests for the drop-bad strategy (the paper's Figure 7/8)."""

import pytest

from repro.core.context import ContextState
from repro.core.drop_bad import DropBadStrategy
from repro.core.inconsistency import Inconsistency
from repro.core.tiebreak import NewestFirst, OldestFirst


def inc(*contexts, constraint="c"):
    return Inconsistency(frozenset(contexts), constraint=constraint)


class TestAdditionChange:
    def test_irrelevant_context_immediately_consistent(self, mk):
        strategy = DropBadStrategy()
        ctx = mk(ctx_type="temperature")
        outcome = strategy.on_context_added(ctx, [], relevant=False)
        assert outcome.admitted == (ctx,)
        assert not outcome.buffered
        assert strategy.state_of(ctx) == ContextState.CONSISTENT

    def test_relevant_context_is_buffered(self, mk):
        strategy = DropBadStrategy()
        ctx = mk()
        outcome = strategy.on_context_added(ctx, [], relevant=True)
        assert outcome.buffered
        assert outcome.admitted == ()
        assert strategy.state_of(ctx) == ContextState.UNDECIDED

    def test_inconsistencies_are_tracked_not_resolved(self, mk):
        strategy = DropBadStrategy()
        a = mk(ctx_id="a", timestamp=1.0)
        strategy.on_context_added(a, [])
        b = mk(ctx_id="b", timestamp=2.0)
        outcome = strategy.on_context_added(b, [inc(a, b)])
        assert outcome.discarded == ()
        assert len(strategy.delta) == 1
        assert strategy.delta.count_of(a) == 1


class TestUseChange:
    def test_clean_context_delivered(self, mk):
        strategy = DropBadStrategy()
        ctx = mk()
        strategy.on_context_added(ctx, [])
        outcome = strategy.on_context_used(ctx)
        assert outcome.delivered
        assert strategy.state_of(ctx) == ContextState.CONSISTENT

    def test_largest_count_context_discarded_when_used(self, mk):
        strategy = DropBadStrategy()
        d3 = mk(ctx_id="d3", timestamp=3.0)
        d4 = mk(ctx_id="d4", timestamp=4.0)
        d5 = mk(ctx_id="d5", timestamp=5.0)
        strategy.on_context_added(d3, [])
        strategy.on_context_added(d4, [inc(d3, d4)])
        strategy.on_context_added(d5, [inc(d3, d5)])
        outcome = strategy.on_context_used(d3)
        assert not outcome.delivered
        assert outcome.discarded == (d3,)
        # Its inconsistencies are resolved away.
        assert len(strategy.delta) == 0

    def test_smaller_count_context_survives_and_blames_culprit(self, mk):
        """Case 2 of Section 3.3: using d1 marks d3 bad, not discarded."""
        strategy = DropBadStrategy()
        d1 = mk(ctx_id="d1", timestamp=1.0)
        d2 = mk(ctx_id="d2", timestamp=2.0)
        d3 = mk(ctx_id="d3", timestamp=3.0)
        d4 = mk(ctx_id="d4", timestamp=4.0)
        strategy.on_context_added(d1, [])
        strategy.on_context_added(d2, [])
        strategy.on_context_added(d3, [inc(d1, d3), inc(d2, d3)])
        strategy.on_context_added(d4, [inc(d3, d4)])
        outcome = strategy.on_context_used(d1)
        assert outcome.delivered
        assert outcome.newly_bad == (d3,)
        assert strategy.state_of(d3) == ContextState.BAD
        # Only d1's inconsistency resolved; (d2,d3), (d3,d4) remain.
        assert len(strategy.delta) == 2

    def test_bad_context_discarded_when_used(self, mk):
        strategy = DropBadStrategy()
        d1 = mk(ctx_id="d1", timestamp=1.0)
        d3 = mk(ctx_id="d3", timestamp=3.0)
        d4 = mk(ctx_id="d4", timestamp=4.0)
        strategy.on_context_added(d1, [])
        strategy.on_context_added(d3, [inc(d1, d3)])
        strategy.on_context_added(d4, [inc(d3, d4)])
        strategy.on_context_used(d1)  # marks d3 bad
        outcome = strategy.on_context_used(d3)
        assert not outcome.delivered
        assert outcome.discarded == (d3,)
        assert strategy.state_of(d3) == ContextState.INCONSISTENT
        # (d3, d4) resolved with d3's discard: d4 is clean now.
        assert strategy.on_context_used(d4).delivered

    def test_drop_bad_never_revokes_consistent_contexts(self, mk):
        """Figure 8 has no consistent->inconsistent edge for drop-bad."""
        strategy = DropBadStrategy()
        a = mk(ctx_id="a", timestamp=1.0)
        strategy.on_context_added(a, [])
        strategy.on_context_used(a)
        assert strategy.state_of(a) == ContextState.CONSISTENT
        b = mk(ctx_id="b", timestamp=2.0)
        strategy.on_context_added(b, [inc(a, b)])
        strategy.on_context_used(b)
        assert strategy.state_of(a) == ContextState.CONSISTENT

    def test_reused_consistent_context_stays_delivered(self, mk):
        strategy = DropBadStrategy()
        ctx = mk(ctx_type="other")
        strategy.on_context_added(ctx, [], relevant=False)
        assert strategy.on_context_used(ctx).delivered
        assert strategy.on_context_used(ctx).delivered

    def test_unknown_context_used_is_admitted(self, mk):
        strategy = DropBadStrategy()
        assert strategy.on_context_used(mk()).delivered


class TestTieHandling:
    def test_tie_discards_used_context_by_default(self, mk):
        """Figure 7 literally: a tied maximum counts as 'largest'."""
        strategy = DropBadStrategy()
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=2.0)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        outcome = strategy.on_context_used(a)
        assert not outcome.delivered

    def test_conservative_variant_spares_tied_context(self, mk):
        strategy = DropBadStrategy(discard_on_tie=False)
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=2.0)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        outcome = strategy.on_context_used(a)
        assert outcome.delivered
        # Nobody else can be blamed safely on a pure tie.
        assert outcome.newly_bad == ()

    def test_tiebreak_policy_chooses_culprit(self, mk):
        """Two culprits tie at max count inside one inconsistency; the
        policy picks which of them turns bad."""

        def build(policy):
            strategy = DropBadStrategy(tiebreak=policy)
            old = mk(ctx_id="old", timestamp=1.0)
            new = mk(ctx_id="new", timestamp=9.0)
            x = mk(ctx_id="x", timestamp=2.0)
            y = mk(ctx_id="y", timestamp=3.0)
            target = mk(ctx_id="t", timestamp=5.0)
            for ctx in (old, new, x, y):
                strategy.on_context_added(ctx, [])
            # One 3-ary inconsistency involving target plus boosters so
            # counts are old=2, new=2, target=1.
            strategy.on_context_added(target, [inc(old, new, target)])
            strategy.on_context_added(
                mk(ctx_id="b1", timestamp=10.0), [inc(old, x)]
            )
            strategy.on_context_added(
                mk(ctx_id="b2", timestamp=11.0), [inc(new, y)]
            )
            outcome = strategy.on_context_used(target)
            assert outcome.delivered
            return [c.ctx_id for c in outcome.newly_bad]

        assert build(OldestFirst()) == ["old"]
        assert build(NewestFirst()) == ["new"]


class TestReset:
    def test_reset_clears_all_state(self, mk):
        strategy = DropBadStrategy()
        a = mk(timestamp=1.0)
        b = mk(timestamp=2.0)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        strategy.reset()
        assert len(strategy.delta) == 0
        assert not strategy.lifecycle.known(a)
        assert strategy.inconsistencies_seen == 0


class TestCheckingScope:
    def test_used_contexts_leave_checking_scope(self, mk):
        """Section 3.2: deletion removes a context from checking."""
        strategy = DropBadStrategy()
        ctx = mk()
        strategy.on_context_added(ctx, [])
        assert strategy.participates_in_checking(ctx)
        strategy.on_context_used(ctx)
        assert not strategy.participates_in_checking(ctx)

    def test_bad_contexts_remain_in_checking_scope(self, mk):
        """Bad contexts keep collecting count evidence (Section 3.3)."""
        strategy = DropBadStrategy()
        d1 = mk(ctx_id="d1", timestamp=1.0)
        d3 = mk(ctx_id="d3", timestamp=3.0)
        d4 = mk(ctx_id="d4", timestamp=4.0)
        strategy.on_context_added(d1, [])
        strategy.on_context_added(d3, [inc(d1, d3)])
        strategy.on_context_added(d4, [inc(d3, d4)])
        strategy.on_context_used(d1)
        assert strategy.state_of(d3) == ContextState.BAD
        assert strategy.participates_in_checking(d3)

    def test_unknown_contexts_participate(self, mk):
        strategy = DropBadStrategy()
        assert strategy.participates_in_checking(mk())
