"""Unit tests for the resolution service and its audit log."""

from typing import List, Sequence

import pytest

from repro.core.context import Context
from repro.core.inconsistency import Inconsistency
from repro.core.resolver import (
    InconsistencyDetector,
    ResolutionLog,
    ResolutionService,
)
from repro.core.strategy import make_strategy


class PairDetector(InconsistencyDetector):
    """Toy detector: contexts of the same subject with equal timestamps
    conflict (a 'two places at once' check)."""

    def __init__(self, relevant_types=("location",)):
        self.relevant_types = set(relevant_types)
        self.forgotten: List[str] = []

    def is_relevant(self, ctx: Context) -> bool:
        return ctx.ctx_type in self.relevant_types

    def detect(self, ctx, existing: Sequence[Context], now: float):
        out = []
        for other in existing:
            if (
                other.subject == ctx.subject
                and other.timestamp == ctx.timestamp
                and other.value != ctx.value
            ):
                out.append(
                    Inconsistency(
                        frozenset({ctx, other}), constraint="two-places"
                    )
                )
        return out

    def forget(self, ctx: Context) -> None:
        self.forgotten.append(ctx.ctx_id)


class TestResolutionService:
    def test_clean_addition_is_admitted_and_logged(self, mk):
        service = ResolutionService(PairDetector(), make_strategy("drop-latest"))
        ctx = mk()
        outcome = service.handle_addition(ctx, [], now=0.0)
        assert outcome.admitted == (ctx,)
        assert service.log.added == [ctx]
        assert service.log.detected == []

    def test_conflicting_addition_detected_and_resolved(self, mk):
        service = ResolutionService(PairDetector(), make_strategy("drop-latest"))
        a = mk(ctx_id="a", value=(0.0, 0.0), timestamp=1.0)
        b = mk(ctx_id="b", value=(9.0, 9.0), timestamp=1.0)
        service.handle_addition(a, [], now=1.0)
        outcome = service.handle_addition(b, [a], now=1.0)
        assert len(service.log.detected) == 1
        assert len(outcome.discarded) == 1
        assert service.log.discarded == list(outcome.discarded)

    def test_irrelevant_context_skips_detection(self, mk):
        detector = PairDetector(relevant_types=("location",))
        service = ResolutionService(detector, make_strategy("drop-bad"))
        ctx = mk(ctx_type="temperature")
        outcome = service.handle_addition(ctx, [], now=0.0)
        assert outcome.admitted == (ctx,)
        assert not outcome.buffered

    def test_expired_contexts_excluded_from_scope(self, mk):
        detector = PairDetector()
        service = ResolutionService(detector, make_strategy("drop-latest"))
        stale = mk(ctx_id="old", timestamp=0.0, lifespan=1.0, value=(0, 0))
        fresh = mk(ctx_id="new", timestamp=0.0, value=(9, 9))
        service.handle_addition(stale, [], now=0.0)
        outcome = service.handle_addition(fresh, [stale], now=5.0)
        # stale expired at t=1; no conflict is detected at t=5.
        assert service.log.detected == []
        assert outcome.admitted == (fresh,)

    def test_discarded_contexts_are_forgotten(self, mk):
        detector = PairDetector()
        service = ResolutionService(detector, make_strategy("drop-latest"))
        a = mk(ctx_id="a", value=(0, 0), timestamp=1.0)
        b = mk(ctx_id="b", value=(9, 9), timestamp=1.0)
        service.handle_addition(a, [], now=1.0)
        service.handle_addition(b, [a], now=1.0)
        assert detector.forgotten == ["b"]

    def test_handle_use_logs_delivery(self, mk):
        service = ResolutionService(PairDetector(), make_strategy("drop-bad"))
        ctx = mk()
        service.handle_addition(ctx, [], now=0.0)
        outcome = service.handle_use(ctx, now=1.0)
        assert outcome.delivered
        assert service.log.delivered == [ctx]

    def test_reset_restores_pristine_state(self, mk):
        service = ResolutionService(PairDetector(), make_strategy("drop-bad"))
        ctx = mk()
        service.handle_addition(ctx, [], now=0.0)
        service.reset()
        assert service.log.added == []
        assert len(service.strategy.delta) == 0


class TestResolutionLog:
    def test_precision_and_survival(self, mk):
        log = ResolutionLog()
        good1 = mk(ctx_id="g1")
        good2 = mk(ctx_id="g2")
        bad1 = mk(ctx_id="b1", corrupted=True)
        bad2 = mk(ctx_id="b2", corrupted=True)
        log.added.extend([good1, good2, bad1, bad2])
        log.discarded.extend([bad1, good1])
        assert log.discarded_corrupted() == 1
        assert log.discarded_expected() == 1
        assert log.removal_precision() == pytest.approx(0.5)
        assert log.survival_rate() == pytest.approx(0.5)

    def test_empty_log_degenerates_to_perfect(self):
        log = ResolutionLog()
        assert log.removal_precision() == 1.0
        assert log.survival_rate() == 1.0
