"""Property-based tests of the paper's reliability theorems (Sec 3.4).

Theorem 1: with Heuristic Rules 1 and 2 holding, every context the
drop-bad strategy discards is corrupted.
Theorem 2: the same with the relaxed Rule 2'.

The rules constrain count values, which evolve as inconsistencies are
resolved; we therefore check them *at each resolution instant* on the
inconsistencies being resolved (exactly the information the strategy's
decision uses) and assert the implication: as long as the rules have
held at every instant so far, no discarded context is expected.

Hypothesis generates adversarial worlds -- arbitrary inconsistency
hypergraphs over corrupted/expected contexts and arbitrary use orders
-- so both the theorem and its preconditions are machine-checked.
"""

from typing import Dict, List, Set, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rules import rule1_holds, rule2_holds, rule2_relaxed_holds
from repro.core.context import Context, ContextState
from repro.core.drop_bad import DropBadStrategy
from repro.core.inconsistency import Inconsistency


def _ctx(index: int, corrupted: bool) -> Context:
    return Context(
        ctx_id=f"x{index:03d}",
        ctx_type="location",
        subject="s",
        value=index,
        timestamp=float(index),
        corrupted=corrupted,
    )


@st.composite
def worlds(draw) -> Tuple[List[Context], List[Set[int]], List[int]]:
    """A random world: contexts, inconsistency member-index sets, and a
    use order.  Biased toward corrupted-heavy inconsistencies so the
    rule preconditions hold often enough to exercise the theorem."""
    n_corrupted = draw(st.integers(min_value=1, max_value=3))
    contexts: List[Context] = [_ctx(i, True) for i in range(n_corrupted)]
    inconsistencies: List[Set[int]] = []
    for corrupted_index in range(n_corrupted):
        for _ in range(draw(st.integers(min_value=1, max_value=3))):
            members = {corrupted_index}
            if draw(st.booleans()) and n_corrupted > 1:
                members.add(draw(st.integers(0, n_corrupted - 1)))
            for _ in range(draw(st.integers(min_value=1, max_value=2))):
                contexts.append(_ctx(len(contexts), False))
                members.add(len(contexts) - 1)
            inconsistencies.append(members)
    # A couple of bystander expected contexts.
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        contexts.append(_ctx(len(contexts), False))
    use_order = draw(st.permutations(list(range(len(contexts)))))
    return contexts, inconsistencies, use_order


def _drive(
    contexts: List[Context],
    member_sets: List[Set[int]],
    use_order: List[int],
    discard_on_tie: bool,
) -> None:
    strategy = DropBadStrategy(discard_on_tie=discard_on_tie)

    # Feed contexts in timestamp order; each inconsistency is reported
    # when its last member arrives (as incremental detection would).
    incs = [
        Inconsistency(
            frozenset(contexts[i] for i in members), constraint=f"ic{n}"
        )
        for n, members in enumerate(member_sets)
    ]
    for index, ctx in enumerate(contexts):
        arriving = [
            inc
            for inc, members in zip(incs, member_sets)
            if max(members) == index
        ]
        strategy.on_context_added(ctx, arriving)

    rule2_ok = True
    rule2_relaxed_ok = True
    for index in use_order:
        ctx = contexts[index]
        if strategy.state_of(ctx).is_terminal():
            continue
        for inconsistency in strategy.delta.involving(ctx):
            if not rule1_holds(inconsistency):
                rule2_ok = rule2_relaxed_ok = False
            if not rule2_holds(inconsistency, strategy.delta):
                rule2_ok = False
            if not rule2_relaxed_holds(inconsistency, strategy.delta):
                rule2_relaxed_ok = False
        outcome = strategy.on_context_used(ctx)
        for discarded in outcome.discarded:
            if rule2_relaxed_ok:
                assert discarded.corrupted, (
                    f"drop-bad discarded expected context "
                    f"{discarded.ctx_id} although Rules 1+2' held at "
                    f"every resolution instant (Theorem 2 violated)"
                )
            if rule2_ok:
                assert discarded.corrupted, "Theorem 1 violated"
        # Culprits marked bad under intact rules must be corrupted too:
        # they will be discarded when used, so the theorem covers them.
        for bad in outcome.newly_bad:
            if rule2_relaxed_ok:
                assert bad.corrupted, (
                    f"drop-bad marked expected context {bad.ctx_id} bad "
                    f"although Rules 1+2' held (Theorem 2 violated)"
                )


@settings(max_examples=300, deadline=None)
@given(worlds())
def test_theorems_1_and_2_hold(world):
    contexts, member_sets, use_order = world
    _drive(contexts, member_sets, use_order, discard_on_tie=True)


@settings(max_examples=200, deadline=None)
@given(worlds())
def test_theorems_hold_for_conservative_tie_variant(world):
    contexts, member_sets, use_order = world
    _drive(contexts, member_sets, use_order, discard_on_tie=False)


@settings(max_examples=200, deadline=None)
@given(worlds())
def test_drop_bad_structural_invariants(world):
    """Strategy invariants that hold on EVERY world, rules or not."""
    contexts, member_sets, use_order = world
    strategy = DropBadStrategy()
    incs = [
        Inconsistency(
            frozenset(contexts[i] for i in members), constraint=f"ic{n}"
        )
        for n, members in enumerate(member_sets)
    ]
    involved_ids = {c.ctx_id for members in member_sets for i in members for c in [contexts[i]]}
    for index, ctx in enumerate(contexts):
        arriving = [
            inc
            for inc, members in zip(incs, member_sets)
            if max(members) == index
        ]
        strategy.on_context_added(ctx, arriving)
    for index in use_order:
        ctx = contexts[index]
        if strategy.state_of(ctx).is_terminal():
            continue
        outcome = strategy.on_context_used(ctx)
        # Only contexts that participated in some inconsistency can
        # ever be discarded.
        for discarded in outcome.discarded:
            assert discarded.ctx_id in involved_ids

    # After every context has been used, nothing is tracked or bad.
    assert len(strategy.delta) == 0
    assert strategy.lifecycle.in_state(ContextState.BAD) == []
    assert strategy.lifecycle.in_state(ContextState.UNDECIDED) == []

    # Figure 8: drop-bad never revokes a consistent context.
    for record in strategy.lifecycle.all_records():
        states = [s for s, _ in record.history]
        for earlier, later in zip(states, states[1:]):
            assert not (
                earlier == ContextState.CONSISTENT
                and later == ContextState.INCONSISTENT
            )
