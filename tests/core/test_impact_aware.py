"""Unit tests for the impact-oriented drop-bad extension."""

import pytest

from repro.core.context import ContextState
from repro.core.drop_bad import DropBadStrategy
from repro.core.impact_aware import (
    ImpactAwareDropBad,
    situation_relevance_model,
)
from repro.core.inconsistency import Inconsistency
from repro.core.strategy import make_strategy


def inc(*contexts, constraint="c"):
    return Inconsistency(frozenset(contexts), constraint=constraint)


class TestRegistration:
    def test_registered_under_name(self):
        strategy = make_strategy("drop-bad-impact")
        assert isinstance(strategy, ImpactAwareDropBad)
        assert strategy.name == "drop-bad-impact"


class TestZeroImpactDegeneration:
    def test_behaves_like_plain_drop_bad(self, mk):
        """With the zero impact model the extension IS drop-bad."""

        def drive(strategy):
            a = mk(ctx_id="a", timestamp=1.0)
            b = mk(ctx_id="b", timestamp=2.0)
            c = mk(ctx_id="c", timestamp=3.0)
            strategy.on_context_added(a, [])
            strategy.on_context_added(b, [inc(a, b)])
            strategy.on_context_added(c, [inc(b, c)])
            return [
                strategy.on_context_used(x).delivered for x in (a, b, c)
            ]

        assert drive(ImpactAwareDropBad()) == drive(DropBadStrategy())


class TestTieImpactGate:
    def _tied_pair(self, mk, strategy):
        """One inconsistency, counts tied 1-1; `a` is used first."""
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=2.0)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        return a, b

    def test_valuable_tied_context_spared(self, mk):
        strategy = ImpactAwareDropBad(impact=lambda ctx: 5.0)
        a, b = self._tied_pair(mk, strategy)
        assert strategy.on_context_used(a).delivered

    def test_worthless_tied_context_discarded(self, mk):
        strategy = ImpactAwareDropBad(impact=lambda ctx: 0.0)
        a, b = self._tied_pair(mk, strategy)
        assert not strategy.on_context_used(a).delivered

    def test_budget_raises_the_bar(self, mk):
        strategy = ImpactAwareDropBad(
            impact=lambda ctx: 5.0, tie_impact_budget=10.0
        )
        a, b = self._tied_pair(mk, strategy)
        assert not strategy.on_context_used(a).delivered

    def test_strict_maximum_discarded_regardless_of_impact(self, mk):
        """Impact only gates *tie* discards; clear count evidence wins."""
        strategy = ImpactAwareDropBad(impact=lambda ctx: 100.0)
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=2.0)
        c = mk(ctx_id="c", timestamp=3.0)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        strategy.on_context_added(c, [inc(b, c)])
        # b's count (2) strictly exceeds a's and c's (1 each).
        assert not strategy.on_context_used(b).delivered


class TestImpactTieBreakForCulprits:
    def test_cheapest_culprit_marked_bad(self, mk):
        impact = {"old": 9.0, "new": 1.0}
        strategy = ImpactAwareDropBad(
            impact=lambda ctx: impact.get(ctx.ctx_id, 0.0)
        )
        old = mk(ctx_id="old", timestamp=1.0)
        new = mk(ctx_id="new", timestamp=9.0)
        x = mk(ctx_id="x", timestamp=2.0)
        y = mk(ctx_id="y", timestamp=3.0)
        target = mk(ctx_id="t", timestamp=5.0)
        for ctx in (old, new, x, y):
            strategy.on_context_added(ctx, [])
        strategy.on_context_added(target, [inc(old, new, target)])
        strategy.on_context_added(
            mk(ctx_id="b1", timestamp=10.0), [inc(old, x)]
        )
        strategy.on_context_added(
            mk(ctx_id="b2", timestamp=11.0), [inc(new, y)]
        )
        outcome = strategy.on_context_used(target)
        assert outcome.delivered
        assert [c.ctx_id for c in outcome.newly_bad] == ["new"]


class TestSituationRelevanceModel:
    def test_scores_relevant_contexts(self, mk):
        model = situation_relevance_model(
            lambda ctx: ctx.value == "meeting", weight=2.0
        )
        assert model(mk(value="meeting")) == 2.0
        assert model(mk(value="corridor")) == 0.0
