"""Property tests for the tracked inconsistency set Δ.

The incrementally maintained count index must always agree with a
from-scratch recount, through any interleaving of add / remove /
resolve operations.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import Context
from repro.core.inconsistency import Inconsistency, TrackedInconsistencies

_CONTEXTS = [
    Context(
        ctx_id=f"c{i}", ctx_type="t", subject="s", value=i, timestamp=float(i)
    )
    for i in range(6)
]


def _inconsistency(member_indices, constraint_index):
    return Inconsistency(
        frozenset(_CONTEXTS[i] for i in member_indices),
        constraint=f"k{constraint_index}",
    )


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.sets(
                st.integers(min_value=0, max_value=5), min_size=1, max_size=3
            ),
            st.integers(min_value=0, max_value=2),
        ),
        st.tuples(
            st.just("remove"),
            st.sets(
                st.integers(min_value=0, max_value=5), min_size=1, max_size=3
            ),
            st.integers(min_value=0, max_value=2),
        ),
        st.tuples(
            st.just("resolve"),
            st.integers(min_value=0, max_value=5),
            st.just(0),
        ),
    ),
    max_size=30,
)


@settings(max_examples=300, deadline=None)
@given(_ops)
def test_counts_always_match_recount(operations):
    delta = TrackedInconsistencies()
    shadow = {}  # key -> Inconsistency, the reference model

    for op, arg, constraint_index in operations:
        if op == "add":
            inconsistency = _inconsistency(arg, constraint_index)
            was_new = delta.add(inconsistency)
            assert was_new == (inconsistency.key not in shadow)
            shadow[inconsistency.key] = inconsistency
        elif op == "remove":
            inconsistency = _inconsistency(arg, constraint_index)
            removed = delta.remove(inconsistency)
            assert removed == (inconsistency.key in shadow)
            shadow.pop(inconsistency.key, None)
        else:  # resolve
            ctx = _CONTEXTS[arg]
            resolved = delta.resolve_involving(ctx)
            expected = {
                key
                for key, inc in shadow.items()
                if inc.involves(ctx)
            }
            assert {inc.key for inc in resolved} == expected
            for key in expected:
                del shadow[key]

        # Invariant: incremental counts == recount from scratch.
        recount = Counter()
        for inconsistency in shadow.values():
            for ctx in inconsistency.contexts:
                recount[ctx] += 1
        assert delta.counts() == dict(recount)
        assert len(delta) == len(shadow)
        assert delta.snapshot() == frozenset(
            inc.contexts for inc in shadow.values()
        )
