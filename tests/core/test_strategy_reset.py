"""Reset semantics: every registered strategy is reusable after reset."""

import pytest

from repro.core.inconsistency import Inconsistency
from repro.core.strategy import make_strategy, strategy_names


def inc(*contexts):
    return Inconsistency(frozenset(contexts))


@pytest.mark.parametrize("name", strategy_names())
class TestReset:
    def test_reset_forgets_everything(self, name, mk):
        strategy = make_strategy(name)
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=2.0, corrupted=True)
        strategy.on_context_added(a, [])
        strategy.on_context_added(b, [inc(a, b)])
        strategy.reset()
        assert len(strategy.delta) == 0
        assert not strategy.lifecycle.known(a)
        assert not strategy.lifecycle.known(b)
        assert strategy.inconsistencies_seen == 0

    def test_run_after_reset_matches_fresh_instance(self, name, mk):
        def drive(strategy):
            a = mk(ctx_id="a", timestamp=1.0)
            b = mk(ctx_id="b", timestamp=2.0, corrupted=True)
            first = strategy.on_context_added(a, [])
            second = strategy.on_context_added(b, [inc(a, b)])
            used = strategy.on_context_used(a)
            return (
                first.discarded,
                second.discarded,
                used.delivered,
            )

        reused = make_strategy(name)
        drive(reused)
        reused.reset()
        assert drive(reused) == drive(make_strategy(name))
