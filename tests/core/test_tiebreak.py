"""Unit tests for tie-break policies."""

import random

import pytest

from repro.core.inconsistency import Inconsistency, TrackedInconsistencies
from repro.core.tiebreak import (
    LeastGlobalCount,
    MostGlobalCount,
    NewestFirst,
    OldestFirst,
    RandomChoice,
    make_tiebreak,
)


@pytest.fixture
def delta():
    return TrackedInconsistencies()


class TestOrderPolicies:
    def test_oldest_first(self, mk, delta):
        old = mk(ctx_id="a", timestamp=1.0)
        new = mk(ctx_id="b", timestamp=2.0)
        assert OldestFirst().choose([new, old], delta) is old

    def test_newest_first(self, mk, delta):
        old = mk(ctx_id="a", timestamp=1.0)
        new = mk(ctx_id="b", timestamp=2.0)
        assert NewestFirst().choose([new, old], delta) is new

    def test_timestamp_ties_broken_by_id(self, mk, delta):
        a = mk(ctx_id="a", timestamp=1.0)
        b = mk(ctx_id="b", timestamp=1.0)
        assert OldestFirst().choose([b, a], delta).ctx_id == "a"
        assert NewestFirst().choose([a, b], delta).ctx_id == "b"

    def test_empty_candidates_raise(self, delta):
        with pytest.raises(ValueError):
            OldestFirst().choose([], delta)


class TestGlobalCountPolicies:
    def _setup(self, mk, delta):
        hot = mk(ctx_id="hot", timestamp=1.0)
        cold = mk(ctx_id="cold", timestamp=2.0)
        x = mk(ctx_id="x", timestamp=3.0)
        delta.add(Inconsistency(frozenset({hot, cold})))
        delta.add(Inconsistency(frozenset({hot, x}), constraint="c2"))
        return hot, cold

    def test_most_global_prefers_entangled(self, mk, delta):
        hot, cold = self._setup(mk, delta)
        assert MostGlobalCount().choose([hot, cold], delta) is hot

    def test_least_global_prefers_isolated(self, mk, delta):
        hot, cold = self._setup(mk, delta)
        assert LeastGlobalCount().choose([hot, cold], delta) is cold


class TestRandomChoice:
    def test_seeded_determinism(self, mk, delta):
        a = mk(ctx_id="a")
        b = mk(ctx_id="b")
        first = RandomChoice(random.Random(3)).choose([a, b], delta)
        second = RandomChoice(random.Random(3)).choose([a, b], delta)
        assert first is second

    def test_choice_is_order_insensitive(self, mk, delta):
        a = mk(ctx_id="a")
        b = mk(ctx_id="b")
        assert RandomChoice(random.Random(3)).choose(
            [a, b], delta
        ) is RandomChoice(random.Random(3)).choose([b, a], delta)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("oldest", OldestFirst),
            ("newest", NewestFirst),
            ("random", RandomChoice),
            ("least-global", LeastGlobalCount),
            ("most-global", MostGlobalCount),
        ],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_tiebreak(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown tie-break"):
            make_tiebreak("nope")
