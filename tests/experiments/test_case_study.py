"""Tests for the Landmarc case study (Section 5.2)."""

import pytest

from repro.experiments.case_study import (
    CaseStudyConfig,
    CaseStudyResult,
    run_case_study,
)


@pytest.fixture(scope="module")
def result():
    return run_case_study(seed=7, config=CaseStudyConfig(duration=200.0))


class TestCaseStudyShape:
    def test_contexts_generated(self, result):
        assert result.contexts_total > 50
        # Burst shadowing yields a visible corrupted fraction.
        fraction = result.contexts_corrupted / result.contexts_total
        assert 0.02 < fraction < 0.5

    def test_survival_high_like_paper(self, result):
        """Paper: 96.5% survival; shape: well above 85%."""
        assert result.survival_rate > 0.85

    def test_precision_meaningful(self, result):
        """Paper: 84.7% removal precision; shape: above 0.5."""
        assert result.removal_precision > 0.5

    def test_rule1_holds_structurally(self, result):
        """Paper: Rule 1 always held -- our constraint set guarantees
        it by construction (velocity bound covers 2x threshold)."""
        assert result.rule1_rate == 1.0

    def test_rule2_relaxed_mostly_holds(self, result):
        """Paper: Rule 2' held in 91.7% of cases; shape: most but not
        necessarily all."""
        assert result.rule2_relaxed_rate > 0.6
        assert result.rule2_relaxed_rate >= result.rule2_rate

    def test_cleaning_improves_accuracy(self, result):
        assert result.mean_error_delivered < result.mean_error_raw
        assert result.accuracy_improvement > 0.0

    def test_observations_collected(self, result):
        assert result.observations > 0


class TestCaseStudyConfig:
    def test_velocity_bound_covers_expected_noise(self):
        config = CaseStudyConfig()
        # v*dt + 2*threshold <= bound*dt must hold.
        assert (
            config.walk_speed * config.period
            + 2 * config.corruption_threshold
            <= config.velocity_bound * config.period + 1e-9
        )

    def test_deterministic(self):
        config = CaseStudyConfig(duration=100.0)
        assert run_case_study(3, config) == run_case_study(3, config)
