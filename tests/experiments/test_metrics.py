"""Unit tests for the experiment metrics."""

import itertools
from dataclasses import dataclass
from typing import FrozenSet

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.metrics import (
    GroupMetrics,
    InconsistencyMeasures,
    average_metrics,
    measure_inconsistencies,
    measure_stream,
    minimum_repair_size,
    normalized_rate,
)


def metrics(**overrides):
    base = dict(
        strategy="drop-bad",
        err_rate=0.2,
        seed=1,
        contexts_total=100,
        contexts_corrupted=20,
        contexts_used=75,
        contexts_used_corrupted=5,
        situations_activated=30,
        situations_spurious=3,
        inconsistencies_detected=40,
        contexts_discarded=25,
        discarded_corrupted=15,
        discarded_expected=10,
    )
    base.update(overrides)
    return GroupMetrics(**base)


class TestGroupMetrics:
    def test_derived_counts(self):
        m = metrics()
        assert m.contexts_used_expected == 70
        assert m.situations_activated_correct == 27

    def test_survival_rate(self):
        m = metrics()
        # 80 expected, 10 discarded expected -> 87.5% survive.
        assert m.survival_rate == pytest.approx(0.875)

    def test_removal_precision_and_recall(self):
        m = metrics()
        assert m.removal_precision == pytest.approx(15 / 25)
        assert m.removal_recall == pytest.approx(15 / 20)

    def test_degenerate_cases(self):
        m = metrics(
            contexts_total=10,
            contexts_corrupted=0,
            contexts_discarded=0,
            discarded_corrupted=0,
            discarded_expected=0,
        )
        assert m.removal_precision == 1.0
        assert m.removal_recall == 1.0
        assert m.survival_rate == 1.0


class TestAverageMetrics:
    def test_means_over_groups(self):
        a = metrics(contexts_used=80, contexts_used_corrupted=0)
        b = metrics(contexts_used=60, contexts_used_corrupted=0)
        avg = average_metrics([a, b])
        assert avg["contexts_used"] == 70.0
        assert avg["contexts_used_expected"] == 70.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metrics([])


class TestNormalizedRate:
    def test_against_baseline(self):
        assert normalized_rate(50.0, 100.0) == 50.0
        assert normalized_rate(100.0, 100.0) == 100.0

    def test_zero_baseline(self):
        assert normalized_rate(0.0, 0.0) == 100.0
        assert normalized_rate(5.0, 0.0) == 0.0


# -- Livshits-style inconsistency measures ------------------------------------


def brute_force_hitting_set(sets):
    """Smallest hitting set by exhaustive search (tiny instances only)."""
    sets = [frozenset(s) for s in sets if s]
    if not sets:
        return 0
    universe = sorted(set().union(*sets))
    for size in range(1, len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            chosen = set(combo)
            if all(chosen & s for s in sets):
                return size
    return len(universe)


class TestMinimumRepairSize:
    def test_empty_is_zero(self):
        assert minimum_repair_size([]) == 0
        assert minimum_repair_size([set(), frozenset()]) == 0

    def test_disjoint_sets_need_one_deletion_each(self):
        sets = [{"a", "b"}, {"c"}, {"d", "e", "f"}]
        assert minimum_repair_size(sets) == 3

    def test_shared_element_hits_everything(self):
        sets = [{"x", "a"}, {"x", "b"}, {"x", "c"}]
        assert minimum_repair_size(sets) == 1

    def test_duplicate_sets_collapse(self):
        assert minimum_repair_size([{"a", "b"}, {"b", "a"}]) == 1

    def test_greedy_is_an_upper_bound(self):
        # The classic greedy trap: greedy picks the max-degree element
        # first, but here the exact optimum still matches because the
        # instance is below the exact limit.
        sets = [{"a", "b"}, {"b", "c"}, {"c", "d"}]
        assert minimum_repair_size(sets) == 2

    def test_exact_limit_zero_forces_greedy(self):
        # Greedy on a chain picks a shared element first; the answer is
        # still a valid (possibly larger) hitting-set size.
        sets = [{"a", "b"}, {"b", "c"}, {"c", "d"}]
        greedy = minimum_repair_size(sets, exact_limit=0)
        assert greedy >= minimum_repair_size(sets)
        assert greedy <= len(sets)  # one pick per set at worst

    @settings(max_examples=60, deadline=None)
    @given(
        sets=st.lists(
            st.frozensets(
                st.sampled_from("abcdef"), min_size=1, max_size=3
            ),
            max_size=5,
        )
    )
    def test_exact_matches_brute_force(self, sets):
        assert minimum_repair_size(sets) == brute_force_hitting_set(sets)


@dataclass(frozen=True)
class _Ctx:
    ctx_id: str
    timestamp: float = 0.0
    corrupted: bool = False


@dataclass(frozen=True)
class _Violation:
    constraint: str
    contexts: FrozenSet[_Ctx]


def violation(constraint, *ids):
    return _Violation(constraint, frozenset(_Ctx(i) for i in ids))


class TestMeasureInconsistencies:
    def test_clean_set_is_all_zero(self):
        m = measure_inconsistencies([], universe=10)
        assert m.drastic == 0
        assert m.mi_count == 0
        assert m.problematic == 0
        assert m.repair == 0
        assert m.problematic_ratio == 0.0
        assert m.per_constraint == {}

    def test_counts_and_ratios(self):
        violations = [
            violation("c1", "a", "b"),
            violation("c1", "b", "c"),
            violation("c2", "d"),
        ]
        m = measure_inconsistencies(violations, universe=8)
        assert m.drastic == 1
        assert m.mi_count == 3
        assert m.problematic == 4  # a, b, c, d
        assert m.repair == 2  # delete b and d
        assert m.per_constraint == {"c1": 2, "c2": 1}
        assert m.problematic_ratio == pytest.approx(0.5)
        assert m.repair_ratio == pytest.approx(0.25)

    def test_identical_bindings_deduplicate(self):
        """The same (constraint, context-set) binding reported twice is
        ONE minimal inconsistent subset."""
        twice = [violation("c1", "a", "b"), violation("c1", "b", "a")]
        m = measure_inconsistencies(twice, universe=4)
        assert m.mi_count == 1
        assert m.per_constraint == {"c1": 1}

    def test_same_contexts_different_constraints_stay_distinct(self):
        m = measure_inconsistencies(
            [violation("c1", "a", "b"), violation("c2", "a", "b")],
            universe=4,
        )
        assert m.mi_count == 2
        assert m.problematic == 2
        assert m.repair == 1

    def test_zero_universe_has_zero_ratios(self):
        m = measure_inconsistencies([], universe=0)
        assert m.problematic_ratio == 0.0
        assert m.repair_ratio == 0.0

    def test_as_record_is_json_shaped(self):
        import json

        record = measure_inconsistencies(
            [violation("c1", "a")], universe=2
        ).as_record()
        json.dumps(record)
        assert record["mi_count"] == 1
        assert record["per_constraint"] == {"c1": 1}


class _StubChecker:
    """check_all that reports one violation over the two newest contexts."""

    def __init__(self):
        self.calls = []

    def check_all(self, contexts, now=None):
        self.calls.append((list(contexts), now))
        if len(contexts) < 2:
            return []
        newest = sorted(contexts, key=lambda c: c.timestamp)[-2:]
        return [_Violation("stub", frozenset(newest))]


class TestMeasureStream:
    def test_checks_at_the_last_timestamp(self):
        checker = _StubChecker()
        contexts = [_Ctx("a", 1.0), _Ctx("b", 5.0), _Ctx("c", 3.0)]
        m = measure_stream(checker, contexts)
        assert checker.calls[0][1] == 5.0  # now = max timestamp
        assert m.universe == 3
        assert m.mi_count == 1
        assert m.problematic == 2

    def test_empty_stream(self):
        m = measure_stream(_StubChecker(), [])
        assert m == InconsistencyMeasures(
            universe=0, drastic=0, mi_count=0, problematic=0, repair=0
        )
