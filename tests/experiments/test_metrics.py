"""Unit tests for the experiment metrics."""

import pytest

from repro.experiments.metrics import (
    GroupMetrics,
    average_metrics,
    normalized_rate,
)


def metrics(**overrides):
    base = dict(
        strategy="drop-bad",
        err_rate=0.2,
        seed=1,
        contexts_total=100,
        contexts_corrupted=20,
        contexts_used=75,
        contexts_used_corrupted=5,
        situations_activated=30,
        situations_spurious=3,
        inconsistencies_detected=40,
        contexts_discarded=25,
        discarded_corrupted=15,
        discarded_expected=10,
    )
    base.update(overrides)
    return GroupMetrics(**base)


class TestGroupMetrics:
    def test_derived_counts(self):
        m = metrics()
        assert m.contexts_used_expected == 70
        assert m.situations_activated_correct == 27

    def test_survival_rate(self):
        m = metrics()
        # 80 expected, 10 discarded expected -> 87.5% survive.
        assert m.survival_rate == pytest.approx(0.875)

    def test_removal_precision_and_recall(self):
        m = metrics()
        assert m.removal_precision == pytest.approx(15 / 25)
        assert m.removal_recall == pytest.approx(15 / 20)

    def test_degenerate_cases(self):
        m = metrics(
            contexts_total=10,
            contexts_corrupted=0,
            contexts_discarded=0,
            discarded_corrupted=0,
            discarded_expected=0,
        )
        assert m.removal_precision == 1.0
        assert m.removal_recall == 1.0
        assert m.survival_rate == 1.0


class TestAverageMetrics:
    def test_means_over_groups(self):
        a = metrics(contexts_used=80, contexts_used_corrupted=0)
        b = metrics(contexts_used=60, contexts_used_corrupted=0)
        avg = average_metrics([a, b])
        assert avg["contexts_used"] == 70.0
        assert avg["contexts_used_expected"] == 70.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metrics([])


class TestNormalizedRate:
    def test_against_baseline(self):
        assert normalized_rate(50.0, 100.0) == 50.0
        assert normalized_rate(100.0, 100.0) == 100.0

    def test_zero_baseline(self):
        assert normalized_rate(0.0, 0.0) == 100.0
        assert normalized_rate(5.0, 0.0) == 0.0
