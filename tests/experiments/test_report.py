"""Unit tests for the plain-text report formatting."""

import pytest

from repro.experiments.ablations import TieBreakPoint, WindowPoint
from repro.experiments.case_study import CaseStudyResult
from repro.experiments.report import (
    format_case_study,
    format_scenarios,
    format_table,
    format_tiebreak_ablation,
    format_window_ablation,
)
from repro.experiments.scenarios import ScenarioOutcome


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_column_widths_fit_content(self):
        text = format_table(["h"], [["longvalue"]])
        header, sep, row = text.splitlines()
        assert len(sep) == len("longvalue")


class TestScenarioFormatting:
    def test_rows_per_outcome(self):
        outcomes = [
            ScenarioOutcome("drop-bad", "A", True, ("d3",), ("d1",)),
            ScenarioOutcome("drop-latest", "B", False, ("d4",), ()),
        ]
        text = format_scenarios(outcomes)
        assert "D-Bad" in text
        assert "D-Lat" in text
        assert "yes" in text and "NO" in text
        assert "refined" in text and "basic" in text


class TestCaseStudyFormatting:
    def test_headline_numbers_present(self):
        result = CaseStudyResult(
            contexts_total=100,
            contexts_corrupted=20,
            survival_rate=0.965,
            removal_precision=0.847,
            removal_recall=0.8,
            rule1_rate=1.0,
            rule2_rate=0.85,
            rule2_relaxed_rate=0.917,
            observations=50,
            mean_error_raw=3.0,
            mean_error_delivered=1.5,
        )
        text = format_case_study(result)
        assert "96.5%" in text
        assert "84.7%" in text
        assert "91.7%" in text
        assert result.accuracy_improvement == pytest.approx(0.5)


class TestAblationFormatting:
    def test_window_table(self):
        points = [
            WindowPoint(0, 80.0, 80.5, 0.5, 0.5),
            WindowPoint(8, 92.0, 81.0, 0.8, 0.5),
        ]
        text = format_window_ablation(points)
        assert "window" in text
        assert "+11.0" in text

    def test_tiebreak_table(self):
        points = [
            TieBreakPoint("oldest", True, 90.0, 91.0, 0.8, 0.95),
            TieBreakPoint("oldest", False, 92.0, 93.0, 0.85, 0.97),
        ]
        text = format_tiebreak_ablation(points)
        assert "oldest" in text
        assert "yes" in text and "no" in text
