"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.charts import ascii_chart, chart_comparison
from repro.experiments.metrics import SeriesPoint


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart(
            {"opt-r": [(0.1, 100.0), (0.2, 100.0)],
             "drop-all": [(0.1, 80.0), (0.2, 70.0)]},
            title="test chart",
        )
        lines = chart.splitlines()
        assert lines[0] == "test chart"
        assert "O" in chart  # opt-r glyph
        assert "A" in chart  # drop-all glyph
        assert "10%" in chart and "20%" in chart
        assert "O=opt-r" in chart

    def test_y_axis_labels_span_range(self):
        chart = ascii_chart(
            {"s": [(0.1, 0.0), (0.4, 100.0)]}, y_min=0.0, y_max=100.0
        )
        assert " 100.0 |" in chart
        assert "   0.0 |" in chart

    def test_collision_marker(self):
        chart = ascii_chart(
            {"a": [(0.1, 50.0)], "b": [(0.1, 50.0)]},
            y_min=0.0,
            y_max=100.0,
        )
        assert "*" in chart

    def test_single_point(self):
        chart = ascii_chart({"s": [(0.1, 42.0)]})
        assert "10%" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_flat_series_does_not_divide_by_zero(self):
        chart = ascii_chart({"s": [(0.1, 5.0), (0.2, 5.0)]})
        assert "S" in chart or "*" in chart


class TestChartComparison:
    def _points(self):
        return [
            SeriesPoint("opt-r", 0.1, 100.0, 100.0),
            SeriesPoint("opt-r", 0.4, 100.0, 100.0),
            SeriesPoint("drop-bad", 0.1, 95.0, 96.0),
            SeriesPoint("drop-bad", 0.4, 88.0, 90.0),
            SeriesPoint("drop-all", 0.1, 85.0, 86.0),
            SeriesPoint("drop-all", 0.4, 62.0, 70.0),
        ]

    def test_renders_all_strategies(self):
        chart = chart_comparison(self._points(), title="Figure 9 top")
        assert chart.splitlines()[0] == "Figure 9 top"
        for glyph in ("O", "B", "A"):
            assert glyph in chart

    def test_metric_selection(self):
        chart = chart_comparison(self._points(), metric="sit_act_rate")
        assert "B=drop-bad" in chart
