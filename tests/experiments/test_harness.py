"""Unit tests for the comparison harness (small scales)."""

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.core.strategy import make_strategy
from repro.experiments.harness import (
    ComparisonConfig,
    ComparisonResult,
    run_comparison,
    run_group,
)


@pytest.fixture(scope="module")
def app():
    return CallForwardingApp()


@pytest.fixture(scope="module")
def small_result(app):
    config = ComparisonConfig(
        strategies=("opt-r", "drop-bad", "drop-latest"),
        err_rates=(0.2,),
        groups_per_point=2,
        workload_kwargs=(("duration", 120.0),),
    )
    return run_comparison(app, config)


class TestRunGroup:
    def test_group_metrics_consistency(self, app):
        contexts = app.generate_workload(0.2, seed=3, duration=120.0)
        m = run_group(
            app,
            make_strategy("opt-r"),
            contexts,
            err_rate=0.2,
            seed=3,
            use_window=5,
        )
        assert m.contexts_total == len(contexts)
        assert m.contexts_used <= m.contexts_total
        assert m.contexts_used_corrupted == 0  # oracle never delivers bad
        assert m.discarded_expected == 0
        assert m.removal_precision == 1.0

    def test_strategies_see_identical_streams(self, app):
        contexts = app.generate_workload(0.2, seed=3, duration=120.0)
        a = run_group(
            app, make_strategy("drop-bad"), contexts, err_rate=0.2, seed=3
        )
        b = run_group(
            app, make_strategy("drop-bad"), contexts, err_rate=0.2, seed=3
        )
        assert a == b  # fully deterministic


class TestComparisonConfig:
    def test_total_groups_matches_paper_scale(self):
        config = ComparisonConfig()
        assert config.total_groups == 320  # 4 strategies x 4 rates x 20

    def test_custom_grid(self):
        config = ComparisonConfig(
            strategies=("a", "b"), err_rates=(0.1,), groups_per_point=3
        )
        assert config.total_groups == 6


class TestComparisonResult:
    def test_all_cells_populated(self, small_result):
        assert len(small_result.groups) == 3 * 1 * 2
        for strategy in small_result.config.strategies:
            assert len(small_result.groups_for(strategy, 0.2)) == 2

    def test_series_normalized_against_oracle(self, small_result):
        points = small_result.series()
        oracle = next(p for p in points if p.strategy == "opt-r")
        assert oracle.ctx_use_rate == pytest.approx(100.0)
        assert oracle.sit_act_rate == pytest.approx(100.0)
        for point in points:
            assert 0.0 <= point.ctx_use_rate <= 100.0 + 1e-9

    def test_point_lookup(self, small_result):
        point = small_result.point("drop-bad", 0.2)
        assert point.strategy == "drop-bad"
        with pytest.raises(KeyError):
            small_result.point("drop-bad", 0.99)

    def test_raw_metrics_carried(self, small_result):
        point = small_result.point("drop-latest", 0.2)
        assert "removal_precision" in point.raw
        assert "contexts_used" in point.raw
