"""Tests for the window and tie-break ablations (small scales)."""

import pytest

from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.experiments.ablations import (
    run_tiebreak_ablation,
    run_window_ablation,
)


@pytest.fixture(scope="module")
def app():
    return RFIDAnomaliesApp()


class TestWindowAblation:
    @pytest.fixture(scope="class")
    def points(self, app):
        return run_window_ablation(
            app,
            windows=(0, 20),
            err_rate=0.3,
            groups=3,
            workload_kwargs={"items": 6},
        )

    def test_one_point_per_window(self, points):
        assert [p.window for p in points] == [0, 20]

    def test_larger_window_helps_drop_bad(self, points):
        """Section 5.3: more window -> more count evidence."""
        zero, large = points
        assert large.drop_bad_use_rate >= zero.drop_bad_use_rate

    def test_window_does_not_change_drop_latest(self, points):
        """Drop-latest resolves at detection; the use window only
        defers accounting, not decisions."""
        zero, large = points
        assert zero.drop_latest_use_rate == pytest.approx(
            large.drop_latest_use_rate, abs=2.0
        )

    def test_rates_bounded(self, points):
        for point in points:
            assert 0.0 <= point.drop_bad_use_rate <= 100.0 + 1e-9
            assert 0.0 <= point.drop_latest_use_rate <= 100.0 + 1e-9


class TestTieBreakAblation:
    @pytest.fixture(scope="class")
    def points(self, app):
        return run_tiebreak_ablation(
            app,
            policies=("oldest", "newest"),
            err_rate=0.3,
            groups=2,
            use_window=20,
            workload_kwargs={"items": 6},
        )

    def test_variants_present(self, points):
        labels = {(p.policy, p.discard_on_tie) for p in points}
        assert labels == {
            ("oldest", True),
            ("newest", True),
            ("oldest", False),
        }

    def test_metrics_in_range(self, points):
        for point in points:
            assert 0.0 <= point.removal_precision <= 1.0
            assert 0.0 <= point.survival_rate <= 1.0
            assert point.ctx_use_rate <= 100.0 + 1e-9
