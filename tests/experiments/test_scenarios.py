"""Tests asserting the Figures 1-5 walkthroughs match the paper."""

import pytest

from repro.experiments.scenarios import (
    SCENARIOS,
    count_values,
    replay_strategy,
    scenario_contexts,
    tracked_inconsistencies,
    velocity_constraints,
)


class TestScenarioGeometry:
    def test_five_contexts_d3_corrupted(self):
        for scenario in SCENARIOS:
            contexts = scenario_contexts(scenario)
            assert [c.ctx_id for c in contexts] == [
                "d1",
                "d2",
                "d3",
                "d4",
                "d5",
            ]
            assert [c.corrupted for c in contexts] == [
                False,
                False,
                True,
                False,
                False,
            ]

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            scenario_contexts("C")

    def test_constraint_sets(self):
        assert len(velocity_constraints(refined=False)) == 1
        assert len(velocity_constraints(refined=True)) == 2


class TestFigure1And4:
    """The basic (adjacent-pair) constraint."""

    def test_scenario_a_delta(self):
        assert tracked_inconsistencies("A", refined=False) == {
            frozenset({"d2", "d3"}),
            frozenset({"d3", "d4"}),
        }

    def test_scenario_a_counts(self):
        assert count_values("A", refined=False) == {
            "d1": 0,
            "d2": 1,
            "d3": 2,
            "d4": 1,
            "d5": 0,
        }

    def test_scenario_b_delta(self):
        assert tracked_inconsistencies("B", refined=False) == {
            frozenset({"d3", "d4"})
        }

    def test_scenario_b_counts_tie(self):
        counts = count_values("B", refined=False)
        assert counts["d3"] == counts["d4"] == 1


class TestFigure5:
    """The refined constraint (one-separated pairs added)."""

    def test_scenario_a_delta(self):
        assert tracked_inconsistencies("A", refined=True) == {
            frozenset({"d1", "d3"}),
            frozenset({"d2", "d3"}),
            frozenset({"d3", "d4"}),
            frozenset({"d3", "d5"}),
        }

    def test_scenario_a_counts(self):
        assert count_values("A", refined=True) == {
            "d1": 1,
            "d2": 1,
            "d3": 4,
            "d4": 1,
            "d5": 1,
        }

    def test_scenario_b_delta(self):
        assert tracked_inconsistencies("B", refined=True) == {
            frozenset({"d3", "d4"}),
            frozenset({"d3", "d5"}),
        }

    def test_scenario_b_counts(self):
        assert count_values("B", refined=True) == {
            "d1": 0,
            "d2": 0,
            "d3": 2,
            "d4": 1,
            "d5": 1,
        }


class TestStrategyNarrative:
    """Section 2-3's claims about each strategy on each scenario."""

    def test_drop_latest_correct_on_a(self):
        assert replay_strategy("drop-latest", "A", refined=False).correct

    def test_drop_latest_blames_d4_on_b(self):
        outcome = replay_strategy("drop-latest", "B", refined=False)
        assert not outcome.correct
        assert "d4" in outcome.discarded
        assert "d3" not in outcome.discarded

    def test_drop_all_loses_d2_on_a(self):
        outcome = replay_strategy("drop-all", "A", refined=False)
        assert not outcome.correct
        assert set(outcome.discarded) >= {"d2", "d3"}

    def test_drop_all_loses_d4_on_b(self):
        outcome = replay_strategy("drop-all", "B", refined=False)
        assert set(outcome.discarded) == {"d3", "d4"}

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("refined", [False, True])
    def test_drop_bad_correct_everywhere(self, scenario, refined):
        outcome = replay_strategy("drop-bad", scenario, refined=refined)
        assert outcome.correct, (
            f"drop-bad should discard exactly d3 in scenario "
            f"{scenario} (refined={refined}), got {outcome.discarded}"
        )

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_opt_r_is_perfect(self, scenario):
        outcome = replay_strategy("opt-r", scenario, refined=True)
        assert outcome.correct
        assert set(outcome.delivered) == {"d1", "d2", "d4", "d5"}
