"""Tests for the paired-comparison statistics."""

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.harness import ComparisonConfig, run_comparison
from repro.experiments.stats import compare_strategies, sign_test


class TestSignTest:
    def test_all_positive_is_small(self):
        assert sign_test([1.0] * 10) < 0.01

    def test_balanced_is_large(self):
        assert sign_test([1, -1, 1, -1, 1, -1]) > 0.5

    def test_zeros_ignored(self):
        assert sign_test([0.0, 0.0]) == 1.0
        assert sign_test([0.0, 1.0, 1.0, 1.0]) == sign_test([1.0, 1.0, 1.0])


@pytest.fixture(scope="module")
def result():
    return run_comparison(
        CallForwardingApp(),
        ComparisonConfig(
            strategies=("opt-r", "drop-bad", "drop-all"),
            err_rates=(0.3,),
            groups_per_point=6,
            use_window=10,
            workload_kwargs=(("duration", 200.0),),
        ),
    )


class TestCompareStrategies:
    def test_oracle_dominates_drop_all_significantly(self, result):
        comparison = compare_strategies(result, "opt-r", "drop-all", 0.3)
        assert comparison.a_beats_b
        assert comparison.n == 6
        assert comparison.t_pvalue < 0.05
        assert comparison.sign_pvalue < 0.05

    def test_self_comparison_is_null(self, result):
        comparison = compare_strategies(result, "drop-bad", "drop-bad", 0.3)
        assert comparison.mean_difference == 0.0
        assert comparison.t_pvalue == 1.0
        assert comparison.sign_pvalue == 1.0
        assert not comparison.significant()

    def test_drop_bad_beats_drop_all(self, result):
        comparison = compare_strategies(result, "drop-bad", "drop-all", 0.3)
        assert comparison.a_beats_b

    def test_unknown_strategy_raises(self, result):
        with pytest.raises(ValueError, match="no groups"):
            compare_strategies(result, "ghost", "drop-bad", 0.3)

    def test_other_metrics_supported(self, result):
        comparison = compare_strategies(
            result,
            "opt-r",
            "drop-all",
            0.3,
            metric="situations_activated_correct",
        )
        assert comparison.metric == "situations_activated_correct"
        assert comparison.a_beats_b
