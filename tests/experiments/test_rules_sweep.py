"""Tests for the rule-satisfaction sensitivity experiment."""

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.experiments.report import format_rule_sensitivity
from repro.experiments.rules_sweep import run_rule_sensitivity


@pytest.fixture(scope="module")
def points():
    return run_rule_sensitivity(
        CallForwardingApp(),
        err_rates=(0.1, 0.4),
        groups=2,
        workload_kwargs={"duration": 150.0},
    )


class TestRuleSensitivity:
    def test_one_point_per_rate(self, points):
        assert [p.err_rate for p in points] == [0.1, 0.4]

    def test_rates_in_unit_interval(self, points):
        for point in points:
            assert 0.0 <= point.rule1_rate <= 1.0
            assert 0.0 <= point.rule2_relaxed_rate <= 1.0
            assert 0.0 <= point.removal_precision <= 1.0
            assert 0.0 <= point.survival_rate <= 1.0

    def test_rule1_holds_with_correct_constraints(self, points):
        """Only corrupted contexts can violate the CF constraints."""
        for point in points:
            assert point.rule1_rate > 0.9

    def test_observations_grow_with_error_rate(self, points):
        low, high = points
        assert high.observations >= low.observations

    def test_formatting(self, points):
        text = format_rule_sensitivity(points)
        assert "Rule 2'" in text
        assert "precision" in text
        assert "10%" in text and "40%" in text

    def test_deterministic(self):
        kwargs = dict(
            err_rates=(0.2,), groups=2, workload_kwargs={"duration": 100.0}
        )
        first = run_rule_sensitivity(CallForwardingApp(), **kwargs)
        second = run_rule_sensitivity(CallForwardingApp(), **kwargs)
        assert first == second
