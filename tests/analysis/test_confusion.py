"""Tests for the discard confusion analysis."""

import pytest

from repro.analysis.confusion import (
    DiscardConfusion,
    confusion_from_log,
    format_confusion,
)
from repro.core.resolver import ResolutionLog


class TestDiscardConfusion:
    def test_scores(self):
        confusion = DiscardConfusion(
            true_positives=8,
            false_positives=2,
            false_negatives=4,
            true_negatives=86,
        )
        assert confusion.total == 100
        assert confusion.precision == pytest.approx(0.8)
        assert confusion.recall == pytest.approx(8 / 12)
        assert confusion.survival_rate == pytest.approx(86 / 88)
        assert confusion.accuracy == pytest.approx(0.94)
        assert 0.0 < confusion.f1 < 1.0

    def test_degenerate_cases(self):
        empty = DiscardConfusion(0, 0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0
        assert empty.survival_rate == 1.0
        assert empty.accuracy == 1.0
        assert empty.f1 == 1.0  # vacuously perfect
        nothing_found = DiscardConfusion(0, 5, 5, 0)
        assert nothing_found.f1 == 0.0

    def test_f1_balances_precision_and_recall(self):
        precise = DiscardConfusion(5, 0, 5, 90)
        recall_heavy = DiscardConfusion(10, 10, 0, 80)
        assert precise.precision == 1.0
        assert recall_heavy.recall == 1.0
        assert 0 < precise.f1 < 1
        assert 0 < recall_heavy.f1 < 1


class TestConfusionFromLog:
    def test_classification(self, mk):
        good_kept = mk(ctx_id="gk")
        good_lost = mk(ctx_id="gl")
        bad_caught = mk(ctx_id="bc", corrupted=True)
        bad_missed = mk(ctx_id="bm", corrupted=True)
        log = ResolutionLog()
        log.added.extend([good_kept, good_lost, bad_caught, bad_missed])
        log.discarded.extend([good_lost, bad_caught])
        confusion = confusion_from_log(log)
        assert confusion.true_positives == 1
        assert confusion.false_positives == 1
        assert confusion.false_negatives == 1
        assert confusion.true_negatives == 1

    def test_matches_log_shortcuts(self, mk):
        """The matrix agrees with the ResolutionLog's own metrics."""
        contexts = [
            mk(ctx_id=f"c{i}", corrupted=(i % 3 == 0)) for i in range(12)
        ]
        log = ResolutionLog()
        log.added.extend(contexts)
        log.discarded.extend(contexts[::4])
        confusion = confusion_from_log(log)
        assert confusion.precision == pytest.approx(log.removal_precision())
        assert confusion.survival_rate == pytest.approx(log.survival_rate())

    def test_end_to_end(self):
        from repro.apps.rfid_anomalies import RFIDAnomaliesApp
        from repro.core.strategy import make_strategy
        from repro.middleware.manager import Middleware

        app = RFIDAnomaliesApp()
        contexts = app.generate_workload(0.3, seed=5, items=5)
        middleware = Middleware(
            app.build_checker(), make_strategy("drop-bad"), use_window=20
        )
        middleware.receive_all(contexts)
        confusion = confusion_from_log(middleware.resolution.log)
        assert confusion.total == len(contexts)
        assert confusion.precision > 0.5
        text = format_confusion(confusion)
        assert "precision" in text and "F1" in text
