"""Unit tests for heuristic-rule measurement."""

import pytest

from repro.analysis.rules import (
    InstrumentedDropBad,
    RuleObservation,
    RuleReport,
    rule1_holds,
    rule2_holds,
    rule2_relaxed_holds,
)
from repro.core.inconsistency import Inconsistency, TrackedInconsistencies


def inc(*contexts, constraint="c"):
    return Inconsistency(frozenset(contexts), constraint=constraint)


class TestRule1:
    def test_holds_with_corrupted_participant(self, mk):
        good = mk()
        bad = mk(corrupted=True)
        assert rule1_holds(inc(good, bad))

    def test_fails_for_all_expected(self, mk):
        assert not rule1_holds(inc(mk(), mk()))


class TestRule2:
    def _delta(self, mk):
        """bad has count 2, good count 1: rules hold in {good, bad}."""
        good = mk(ctx_id="g")
        bad = mk(ctx_id="b", corrupted=True)
        other = mk(ctx_id="o")
        delta = TrackedInconsistencies()
        main = inc(good, bad)
        delta.add(main)
        delta.add(inc(bad, other, constraint="c2"))
        return good, bad, main, delta

    def test_rule2_holds_when_corrupted_leads(self, mk):
        good, bad, main, delta = self._delta(mk)
        assert rule2_holds(main, delta)
        assert rule2_relaxed_holds(main, delta)

    def test_rule2_fails_on_tie(self, mk):
        good = mk(ctx_id="g")
        bad = mk(ctx_id="b", corrupted=True)
        delta = TrackedInconsistencies()
        main = inc(good, bad)
        delta.add(main)
        assert not rule2_holds(main, delta)
        assert not rule2_relaxed_holds(main, delta)

    def test_relaxed_weaker_than_strict(self, mk):
        """Two corrupted, one leading: 2' holds, 2 does not."""
        good = mk(ctx_id="g")
        bad1 = mk(ctx_id="b1", corrupted=True)
        bad2 = mk(ctx_id="b2", corrupted=True)
        delta = TrackedInconsistencies()
        main = inc(good, bad1, bad2)
        delta.add(main)
        delta.add(inc(bad1, mk(ctx_id="x"), constraint="c2"))
        delta.add(inc(bad1, mk(ctx_id="y"), constraint="c3"))
        delta.add(inc(good, mk(ctx_id="z"), constraint="c4"))
        # counts: bad1=3, good=2, bad2=1
        assert rule2_relaxed_holds(main, delta)
        assert not rule2_holds(main, delta)

    def test_vacuous_without_both_kinds(self, mk):
        delta = TrackedInconsistencies()
        all_bad = inc(mk(corrupted=True), mk(corrupted=True))
        delta.add(all_bad)
        assert rule2_holds(all_bad, delta)
        all_good = inc(mk(), mk())
        delta.add(all_good)
        assert rule2_relaxed_holds(all_good, delta)


class TestRuleReport:
    def test_rates(self):
        report = RuleReport()
        report.add(
            RuleObservation("c", ("a",), rule1=True, rule2=True, rule2_relaxed=True)
        )
        report.add(
            RuleObservation("c", ("b",), rule1=True, rule2=False, rule2_relaxed=True)
        )
        assert report.rule1_rate == 1.0
        assert report.rule2_rate == 0.5
        assert report.rule2_relaxed_rate == 1.0
        assert len(report) == 2

    def test_empty_report_is_vacuously_perfect(self):
        assert RuleReport().rule1_rate == 1.0


class TestInstrumentedDropBad:
    def test_observations_recorded_at_use_time(self, mk):
        strategy = InstrumentedDropBad()
        good = mk(ctx_id="g", timestamp=1.0)
        bad = mk(ctx_id="b", timestamp=2.0, corrupted=True)
        extra = mk(ctx_id="x", timestamp=3.0)
        strategy.on_context_added(good, [])
        strategy.on_context_added(bad, [inc(good, bad)])
        strategy.on_context_added(extra, [inc(bad, extra, constraint="c2")])
        strategy.on_context_used(good)
        assert len(strategy.report) == 1
        observation = strategy.report.observations[0]
        assert observation.rule1
        assert observation.rule2  # bad count 2 > good count 1
        assert observation.context_ids == ("b", "g")

    def test_behaves_like_drop_bad(self, mk):
        strategy = InstrumentedDropBad()
        good = mk(ctx_id="g", timestamp=1.0)
        bad = mk(ctx_id="b", timestamp=2.0, corrupted=True)
        extra = mk(ctx_id="x", timestamp=3.0)
        strategy.on_context_added(good, [])
        strategy.on_context_added(bad, [inc(good, bad)])
        strategy.on_context_added(extra, [inc(bad, extra, constraint="c2")])
        assert strategy.on_context_used(good).delivered
        assert not strategy.on_context_used(bad).delivered
        assert strategy.on_context_used(extra).delivered
