"""Tests for the ``repro serve`` and ``repro loadgen`` CLI commands."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestServeParser:
    def test_serve_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "unknown-app"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "rfid"])
        assert args.port == 8600
        assert args.rate is None
        assert args.shards == 2

    def test_serve_rejects_bad_config(self, capsys):
        code = main(["serve", "rfid", "--batch-max-size", "0"], out=io.StringIO())
        assert code == 2
        assert "batch_max_size" in capsys.readouterr().err

    def test_loadgen_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadgen", "unknown-app"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(["loadgen", "rfid"])
        assert args.rates == [200.0, 500.0, 1000.0]
        assert args.contexts == 500
        assert args.json is None


class TestLoadgenCommand:
    def test_sweep_prints_table_and_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        code, text = run_cli(
            "loadgen", "rfid",
            "--rates", "2000",
            "--contexts", "60",
            "--json", str(path),
        )
        assert code == 0
        assert "Open-loop ingest sweep -- rfid" in text
        assert "decision p50/p95/p99" in text
        assert f"record merged into {path}" in text
        document = json.loads(path.read_text())
        record = document["serve_open_loop"]
        assert record["rates"] == [2000.0]
        row = record["rows"][0]
        assert row["sent"] == 60
        assert row["drain"]["lost"] == 0
        assert row["server"]["ingest_to_decision_s"]["count"] > 0
