"""Gap timeouts end to end: the service skips starved sequence gaps.

The starvation scenario: a source submits explicit-seq records but one
slot never arrives.  Before the gap-timeout fix the run behind the gap
sat in the sequencer until drain; now the sweeper (and the
opportunistic per-submission sweep) skips the hole after
``gap_timeout`` and forwards the survivors -- unless their
availability lapsed while they were held, in which case they are
dropped with ``serve_gap_expired_total`` instead of being fed to the
engine as corpses.
"""

import asyncio

import pytest

from repro.obs import Telemetry
from repro.serve import IngestService, ServeConfig
from repro.serve.loadgen import build_app_engine, prepare_records

pytestmark = pytest.mark.async_check


def make_service(telemetry=None, **config_kwargs) -> IngestService:
    telemetry = telemetry or Telemetry(enabled=True)
    engine = build_app_engine("rfid", shards=2, telemetry=telemetry)
    return IngestService(
        engine,
        config=ServeConfig(port=0, **config_kwargs),
        telemetry=telemetry,
    )


def test_sweeper_skips_starved_gap_and_forwards_survivors():
    async def main():
        telemetry = Telemetry(enabled=True)
        service = make_service(
            telemetry, gap_timeout=0.05, batch_max_delay=0.001
        )
        await service.start()
        records = prepare_records("rfid", 4)
        # seq 0 never arrives: 1..3 are held behind the gap.
        for i, record in enumerate(records[1:], start=1):
            result = service.submit_record(record, source="gapped", seq=i)
            assert result.admitted and result.released == 0
        assert service.sequencer.pending("gapped") == 3
        # Wait out the timeout; the background sweeper skips the hole.
        deadline = asyncio.get_running_loop().time() + 2.0
        while service.sequencer.pending("gapped"):
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.02)
        assert service.sequencer.gap_skips == 1
        assert telemetry.registry.value("serve_gap_skips") == 1
        report = await service.drain()
        assert report["lost"] == 0
        assert report["admitted"] == 3
        assert report["decided"] == 3
        assert report["gap_skips"] == 1
        assert report["gap_expired"] == 0

    asyncio.run(main())


def test_opportunistic_sweep_on_the_arrival_path():
    """A later submission (any source) skips an already-starved gap
    without waiting for the background sweeper."""

    async def main():
        service = make_service(gap_timeout=0.05, batch_max_delay=0.001)
        # No start(): the background sweeper never runs, so any skip
        # must come from the submission-path sweep.
        records = prepare_records("rfid", 3)
        service.submit_record(records[0], source="gapped", seq=1)
        await asyncio.sleep(0.08)  # gap is now past its timeout
        result = service.submit_record(records[1], source="other")
        assert result.admitted
        assert service.sequencer.gap_skips == 1
        assert service.sequencer.pending("gapped") == 0
        report = await service.drain()
        assert report["lost"] == 0
        assert report["decided"] == 2

    asyncio.run(main())


def test_gap_released_context_with_lapsed_availability_is_dropped():
    async def main():
        telemetry = Telemetry(enabled=True)
        service = make_service(
            telemetry, gap_timeout=0.05, batch_max_delay=0.001
        )
        await service.start()
        # Held behind a gap with a lifespan far shorter than the gap
        # timeout: by the time the sweeper releases it, its availability
        # (timestamp 0 + lifespan, on the service's sim clock) lapsed.
        corpse = {
            "ctx_id": "corpse-1",
            "ctx_type": "location",
            "subject": "tag-1",
            "timestamp": 0.0,
            "lifespan": 0.01,
        }
        result = service.submit_record(corpse, source="gapped", seq=1)
        assert result.admitted and result.released == 0
        deadline = asyncio.get_running_loop().time() + 2.0
        while service.sequencer.pending("gapped"):
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.02)
        assert service._gap_expired == 1
        assert telemetry.registry.value("serve_gap_expired_total") == 1
        report = await service.drain()
        # Dropped at release, never forwarded: not lost, not decided.
        assert report["lost"] == 0
        assert report["gap_expired"] == 1
        assert report["decided"] == 0

    asyncio.run(main())


def test_no_timeout_means_gaps_hold_until_drain():
    async def main():
        service = make_service(batch_max_delay=0.001)  # gap_timeout unset
        await service.start()
        assert service._sweeper_task is None
        records = prepare_records("rfid", 2)
        service.submit_record(records[0], source="gapped", seq=1)
        await asyncio.sleep(0.1)
        assert service.sequencer.pending("gapped") == 1
        assert service.sequencer.gap_skips == 0
        report = await service.drain()  # flush_held resolves it
        assert report["lost"] == 0
        assert report["decided"] == 1

    asyncio.run(main())
