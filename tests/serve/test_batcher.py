"""Adaptive batching: size trigger, linger timer, drain."""

import asyncio

from repro.obs import Telemetry
from repro.serve.batcher import AdaptiveBatcher


def test_size_trigger_flushes_immediately():
    async def main():
        batches = []
        batcher = AdaptiveBatcher(batches.append, max_size=3, max_delay=60.0)
        for item in range(7):
            batcher.add(item)
        # Two full batches flushed synchronously; one partial buffered.
        assert batches == [[0, 1, 2], [3, 4, 5]]
        assert len(batcher) == 1
        batcher.drain()
        assert batches[-1] == [6]

    asyncio.run(main())


def test_timer_flushes_partial_batch():
    async def main():
        batches = []
        batcher = AdaptiveBatcher(batches.append, max_size=100, max_delay=0.01)
        batcher.add("a")
        batcher.add("b")
        assert batches == []
        await asyncio.sleep(0.05)
        assert batches == [["a", "b"]]

    asyncio.run(main())


def test_zero_delay_means_no_batching():
    async def main():
        batches = []
        batcher = AdaptiveBatcher(batches.append, max_size=100, max_delay=0.0)
        batcher.add("a")
        batcher.add("b")
        assert batches == [["a"], ["b"]]

    asyncio.run(main())


def test_timer_rearms_after_flush():
    async def main():
        batches = []
        batcher = AdaptiveBatcher(batches.append, max_size=100, max_delay=0.01)
        batcher.add(1)
        await asyncio.sleep(0.05)
        batcher.add(2)
        await asyncio.sleep(0.05)
        assert batches == [[1], [2]]

    asyncio.run(main())


def test_drain_is_idempotent_and_counts_triggers():
    async def main():
        telemetry = Telemetry(enabled=True)
        batches = []
        batcher = AdaptiveBatcher(
            batches.append, max_size=2, max_delay=60.0, telemetry=telemetry
        )
        batcher.extend([1, 2, 3])
        batcher.drain()
        batcher.drain()  # nothing buffered: no empty flush
        assert batches == [[1, 2], [3]]
        registry = telemetry.registry
        assert registry.value(
            "serve_batch_flush_total", {"trigger": "size"}
        ) == 1
        assert registry.value(
            "serve_batch_flush_total", {"trigger": "drain"}
        ) == 1
        assert batcher.stats() == {
            "buffered": 0, "flushes": 2, "items": 3, "mean_batch": 1.5,
        }

    asyncio.run(main())
