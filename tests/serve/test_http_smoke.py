"""Transport smoke tests: HTTP routes, status codes, WebSocket frames.

Real sockets on an ephemeral port, but everything in-process and
bounded: each test runs one server, a handful of requests, and a full
drain.  CI runs this module under pytest-timeout as the serve smoke
gate.
"""

import asyncio
import json

from repro.obs import Telemetry
from repro.serve import (
    HttpClient,
    IngestServer,
    IngestService,
    ServeConfig,
    WsClient,
)
from repro.serve.loadgen import build_app_engine, prepare_records


def run_with_server(test_body, **config_kwargs):
    """Start a server on port 0, run ``test_body(host, port, server)``,
    always shut down."""

    async def main():
        telemetry = Telemetry(enabled=True)
        engine = build_app_engine("rfid", shards=2, telemetry=telemetry)
        service = IngestService(
            engine,
            config=ServeConfig(port=0, batch_max_delay=0.001, **config_kwargs),
            telemetry=telemetry,
        )
        server = IngestServer(service)
        host, port = await server.start()
        try:
            await test_body(host, port, server)
        finally:
            if server._server is not None:
                await server.shutdown()

    asyncio.run(main())


def test_healthz_stats_and_unknown_routes():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        assert await client.get("/healthz") == (200, {"status": "ok"})
        status, stats = await client.get("/stats")
        assert status == 200
        assert stats["admission"]["admitted"] == 0
        assert await client.get("/nope") == (404, {"error": "no route /nope"})
        status, _ = await client.request("DELETE", "/stats")
        assert status == 405
        await client.close()

    run_with_server(body)


def test_post_contexts_accepts_and_acks_each_record():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        records = prepare_records("rfid", 12)
        status, payload = await client.post("/contexts", {"contexts": records})
        assert status == 202
        assert payload["accepted"] == 12 and payload["shed"] == 0
        assert [r["status"] for r in payload["results"]] == ["admitted"] * 12
        # A bare object and a bare list are accepted shapes too.
        status, payload = await client.post("/contexts", records[0] | {"ctx_id": "solo"})
        assert status == 202 and payload["accepted"] == 1
        await client.close()

    run_with_server(body)


def test_post_contexts_malformed_is_400_not_shed():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        status, payload = await client.post("/contexts", {"ctx_id": "x"})
        assert status == 400
        status, stats = await client.get("/stats")
        assert stats["admission"]["shed_total"] == 0
        await client.close()

    run_with_server(body)


def test_rate_overload_returns_429_with_reason():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        records = prepare_records("rfid", 5)
        # burst=1: the first record takes the only token.
        status, payload = await client.post("/contexts", {"contexts": records})
        assert status == 202  # some admitted, some shed
        assert payload["accepted"] >= 1
        assert payload["shed"] == 5 - payload["accepted"]
        shed = [r for r in payload["results"] if r["status"] == "shed"]
        assert all(r["reason"] == "rate" for r in shed)
        # Everything shed -> the explicit back-off status.
        status, payload = await client.post(
            "/contexts", {"contexts": prepare_records("rfid", 3)}
        )
        assert status == 429
        assert payload["accepted"] == 0
        await client.close()

    run_with_server(body, rate=0.001, burst=1.0)


def test_drain_endpoint_reports_zero_loss():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        await client.post("/contexts", {"contexts": prepare_records("rfid", 20)})
        status, report = await client.post("/drain", {})
        assert status == 200
        assert report["lost"] == 0
        assert report["decided"] == 20
        # Post-drain arrivals are shed "closed".
        status, payload = await client.post(
            "/contexts", {"contexts": prepare_records("rfid", 2)}
        )
        assert status == 429
        assert all(r["reason"] == "closed" for r in payload["results"])
        await client.close()

    run_with_server(body)


def test_websocket_roundtrip_and_ping():
    async def body(host, port, server):
        ws = await WsClient.connect(host, port)
        records = prepare_records("rfid", 6)
        await ws.send_json(records[0])
        ack = await ws.recv_json()
        assert ack["status"] == "admitted"
        await ws.send_json(records[1:4])
        acks = await ws.recv_json()
        assert [a["status"] for a in acks] == ["admitted"] * 3
        await ws.send_json("not an object")
        assert (await ws.recv_json())["status"] == "error"
        await ws.close()
        # The HTTP side still works on a fresh connection afterwards.
        client = await HttpClient.connect(host, port)
        status, stats = await client.get("/stats")
        assert stats["admission"]["admitted"] == 4
        await client.close()

    run_with_server(body)


def test_large_body_is_413():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        big = {"contexts": [{"ctx_id": "x" * 4096}] * 64}
        assert len(json.dumps(big)) > 4096
        status, payload = await client.post("/contexts", big)
        assert status == 413
        await client.close()

    run_with_server(body, max_body_bytes=4096)


def test_latency_histograms_populate():
    async def body(host, port, server):
        client = await HttpClient.connect(host, port)
        await client.post("/contexts", {"contexts": prepare_records("rfid", 30)})
        await asyncio.sleep(0.05)  # let the pump decide the batch
        status, stats = await client.get("/stats")
        decision = stats["latency"]["ingest_to_decision"]
        assert decision["count"] == 30
        assert 0 < decision["p50"] <= decision["p99"]
        await client.close()

    run_with_server(body)
