"""Admission control: token bucket, depth shedding, close, revoke."""

from repro.obs import Telemetry
from repro.serve.admission import (
    SHED_CLOSED,
    SHED_DEPTH,
    SHED_RATE,
    AdmissionController,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 3.0, clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(10.0, 2.0, clock)
        bucket.try_acquire()
        bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.1)  # 1 token back at 10/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_capacity_caps_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(100.0, 5.0, clock)
        clock.advance(60.0)
        assert bucket.available() == 5.0

    def test_rejects_bad_parameters(self):
        for rate, capacity in ((0.0, 1.0), (-1.0, 1.0), (1.0, 0.5)):
            try:
                TokenBucket(rate, capacity)
            except ValueError:
                pass
            else:
                raise AssertionError(f"accepted rate={rate} cap={capacity}")


class TestAdmissionController:
    def test_unlimited_controller_admits_everything(self):
        controller = AdmissionController(max_queue_depth=100)
        assert all(controller.admit(0) is None for _ in range(50))
        assert controller.admitted == 50
        assert controller.stats()["shed_total"] == 0

    def test_rate_shed(self):
        clock = FakeClock()
        controller = AdmissionController(rate=10.0, burst=2.0, clock=clock)
        assert controller.admit(0) is None
        assert controller.admit(0) is None
        assert controller.admit(0) == SHED_RATE
        clock.advance(0.1)
        assert controller.admit(0) is None
        assert controller.shed[SHED_RATE] == 1

    def test_depth_shed_precedes_rate(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1000.0, max_queue_depth=4, clock=clock
        )
        assert controller.admit(3) is None
        assert controller.admit(4) == SHED_DEPTH
        # A depth shed must not consume a rate token.
        assert controller.bucket.available() == controller.bucket.capacity - 1

    def test_closed_sheds_everything(self):
        controller = AdmissionController()
        controller.close()
        assert controller.admit(0) == SHED_CLOSED
        assert controller.stats()["closed"]

    def test_revoke_nets_out_and_counts(self):
        telemetry = Telemetry(enabled=True)
        controller = AdmissionController(telemetry=telemetry)
        assert controller.admit(0) is None
        controller.revoke("order")
        assert controller.admitted == 0
        assert controller.shed["order"] == 1
        registry = telemetry.registry
        assert registry.value("serve_admitted_total") == 1
        assert registry.value("serve_admitted_revoked_total") == 1
        assert registry.value("serve_shed_total", {"reason": "order"}) == 1

    def test_shed_rate_stat(self):
        controller = AdmissionController(max_queue_depth=1)
        controller.admit(0)
        controller.admit(5)
        assert controller.stats()["shed_rate"] == 0.5
