"""Per-source FIFO sequencing: implicit/explicit seq, gaps, bounds."""

import pytest

from repro.serve.sequencer import SequenceError, SourceSequencer


def released_items(pairs):
    return [item for _, item in pairs]


class TestImplicitOrder:
    def test_arrival_order_is_release_order(self):
        seq = SourceSequencer()
        out = []
        for item in "abc":
            out += released_items(seq.push("s1", item))
        assert out == ["a", "b", "c"]

    def test_sources_are_independent(self):
        seq = SourceSequencer()
        assert released_items(seq.push("s1", "a1")) == ["a1"]
        assert released_items(seq.push("s2", "b1")) == ["b1"]
        assert seq.cursor("s1") == 1
        assert seq.cursor("s2") == 1


class TestExplicitOrder:
    def test_gap_holds_until_filled(self):
        seq = SourceSequencer()
        assert seq.push("s", "late", seq=2) == []
        assert seq.push("s", "later", seq=1) == []
        assert seq.pending("s") == 2
        # seq 0 arrives: the whole run releases, in seq order.
        assert seq.push("s", "first", seq=0) == [
            (0, "first"), (1, "later"), (2, "late"),
        ]
        assert seq.pending("s") == 0

    def test_stale_seq_raises(self):
        seq = SourceSequencer()
        seq.push("s", "a", seq=0)
        with pytest.raises(SequenceError):
            seq.push("s", "dup", seq=0)

    def test_duplicate_pending_raises(self):
        seq = SourceSequencer()
        seq.push("s", "a", seq=5)
        with pytest.raises(SequenceError):
            seq.push("s", "b", seq=5)

    def test_reorder_buffer_is_bounded(self):
        seq = SourceSequencer(max_pending=2)
        seq.push("s", "x", seq=10)
        seq.push("s", "y", seq=11)
        with pytest.raises(SequenceError):
            seq.push("s", "z", seq=12)
        # The in-order head is always admissible even at the bound.
        assert released_items(seq.push("s", "head", seq=0)) == ["head"]

    def test_implicit_after_explicit_gap_skips_held_slots(self):
        seq = SourceSequencer()
        seq.push("s", "gap2", seq=2)
        # Implicit claims the next free slot (1), not the held one (2).
        assert seq.push("s", "imp", seq=None) == []
        assert released_items(seq.push("s", "first", seq=0)) == [
            "first", "imp", "gap2",
        ]


class TestFlushHeld:
    def test_flush_releases_in_per_source_seq_order(self):
        seq = SourceSequencer()
        seq.push("b", "b9", seq=9)
        seq.push("a", "a5", seq=5)
        seq.push("a", "a3", seq=3)
        flushed = seq.flush_held()
        assert released_items(flushed) == ["a3", "a5", "b9"]
        assert seq.pending() == 0

    def test_flush_advances_cursor_past_everything(self):
        seq = SourceSequencer()
        seq.push("s", "late", seq=7)
        seq.flush_held()
        with pytest.raises(SequenceError):
            seq.push("s", "dup", seq=7)
        assert seq.cursor("s") == 8

    def test_stats(self):
        seq = SourceSequencer()
        seq.push("s", "a")
        seq.push("s", "c", seq=3)
        stats = seq.stats()
        assert stats == {
            "sources": 1, "released": 1, "reordered": 1, "held": 1,
        }
