"""Per-source FIFO sequencing: implicit/explicit seq, gaps, bounds."""

import pytest

from repro.serve.sequencer import SequenceError, SourceSequencer


def released_items(pairs):
    return [item for _, item in pairs]


class TestImplicitOrder:
    def test_arrival_order_is_release_order(self):
        seq = SourceSequencer()
        out = []
        for item in "abc":
            out += released_items(seq.push("s1", item))
        assert out == ["a", "b", "c"]

    def test_sources_are_independent(self):
        seq = SourceSequencer()
        assert released_items(seq.push("s1", "a1")) == ["a1"]
        assert released_items(seq.push("s2", "b1")) == ["b1"]
        assert seq.cursor("s1") == 1
        assert seq.cursor("s2") == 1


class TestExplicitOrder:
    def test_gap_holds_until_filled(self):
        seq = SourceSequencer()
        assert seq.push("s", "late", seq=2) == []
        assert seq.push("s", "later", seq=1) == []
        assert seq.pending("s") == 2
        # seq 0 arrives: the whole run releases, in seq order.
        assert seq.push("s", "first", seq=0) == [
            (0, "first"), (1, "later"), (2, "late"),
        ]
        assert seq.pending("s") == 0

    def test_stale_seq_raises(self):
        seq = SourceSequencer()
        seq.push("s", "a", seq=0)
        with pytest.raises(SequenceError):
            seq.push("s", "dup", seq=0)

    def test_duplicate_pending_raises(self):
        seq = SourceSequencer()
        seq.push("s", "a", seq=5)
        with pytest.raises(SequenceError):
            seq.push("s", "b", seq=5)

    def test_reorder_buffer_is_bounded(self):
        seq = SourceSequencer(max_pending=2)
        seq.push("s", "x", seq=10)
        seq.push("s", "y", seq=11)
        with pytest.raises(SequenceError):
            seq.push("s", "z", seq=12)
        # The in-order head is always admissible even at the bound.
        assert released_items(seq.push("s", "head", seq=0)) == ["head"]

    def test_implicit_after_explicit_gap_skips_held_slots(self):
        seq = SourceSequencer()
        seq.push("s", "gap2", seq=2)
        # Implicit claims the next free slot (1), not the held one (2).
        assert seq.push("s", "imp", seq=None) == []
        assert released_items(seq.push("s", "first", seq=0)) == [
            "first", "imp", "gap2",
        ]


class TestFlushHeld:
    def test_flush_releases_in_per_source_seq_order(self):
        seq = SourceSequencer()
        seq.push("b", "b9", seq=9)
        seq.push("a", "a5", seq=5)
        seq.push("a", "a3", seq=3)
        flushed = seq.flush_held()
        assert released_items(flushed) == ["a3", "a5", "b9"]
        assert seq.pending() == 0

    def test_flush_advances_cursor_past_everything(self):
        seq = SourceSequencer()
        seq.push("s", "late", seq=7)
        seq.flush_held()
        with pytest.raises(SequenceError):
            seq.push("s", "dup", seq=7)
        assert seq.cursor("s") == 8

    def test_stats(self):
        seq = SourceSequencer()
        seq.push("s", "a")
        seq.push("s", "c", seq=3)
        stats = seq.stats()
        assert stats == {
            "sources": 1, "released": 1, "reordered": 1, "held": 1,
            "gap_skips": 0,
        }


class TestGapTimeout:
    """The starvation fix: a gap that never fills is eventually skipped."""

    def make(self, timeout=5.0):
        now = [0.0]
        seq = SourceSequencer(gap_timeout=timeout, clock=lambda: now[0])
        return seq, now

    def test_disabled_by_default_holds_forever(self):
        seq = SourceSequencer()
        seq.push("s", "b", seq=1)
        assert seq.expire_gaps() == []
        assert seq.next_gap_deadline() is None
        assert seq.pending() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SourceSequencer(gap_timeout=0.0)

    def test_timed_out_gap_is_skipped_and_run_released(self):
        seq, now = self.make()
        seq.push("s", "b", seq=1)
        seq.push("s", "c", seq=2)
        assert seq.expire_gaps() == []  # stopwatch at 0: not timed out
        now[0] = 5.0
        out = seq.expire_gaps()
        assert released_items(out) == ["b", "c"]
        assert seq.gap_skips == 1  # slot 0 was skipped
        assert seq.cursor("s") == 3
        assert seq.pending() == 0

    def test_skipped_slot_is_stale_if_it_finally_arrives(self):
        seq, now = self.make()
        seq.push("s", "b", seq=1)
        now[0] = 5.0
        seq.expire_gaps()
        with pytest.raises(SequenceError):
            seq.push("s", "a", seq=0)  # the straggler that starved us

    def test_one_gap_per_source_per_sweep(self):
        seq, now = self.make()
        seq.push("s", "b", seq=1)
        seq.push("s", "d", seq=3)
        now[0] = 5.0
        assert released_items(seq.expire_gaps()) == ["b"]
        assert seq.gap_skips == 1
        # The second hole's stopwatch restarted at the sweep: it gets
        # its own full timeout rather than flushing immediately.
        assert seq.expire_gaps() == []
        now[0] = 10.0
        assert released_items(seq.expire_gaps()) == ["d"]
        assert seq.gap_skips == 2

    def test_stopwatch_restarts_when_head_gap_changes(self):
        seq, now = self.make()
        seq.push("s", "b", seq=1)  # gap 0 opens at t=0
        now[0] = 4.0
        # Gap 0 fills normally; the release leaves a NEW gap (2) held,
        # whose clock must start at 4.0, not inherit t=0.
        seq.push("s", "d", seq=3)
        released = seq.push("s", "a", seq=0)
        assert released_items(released) == ["a", "b"]
        now[0] = 5.0  # only 1s on the new gap
        assert seq.expire_gaps() == []
        now[0] = 9.0
        assert released_items(seq.expire_gaps()) == ["d"]

    def test_next_gap_deadline_tracks_oldest_gap(self):
        seq, now = self.make()
        assert seq.next_gap_deadline() is None
        seq.push("s1", "b", seq=1)
        now[0] = 2.0
        seq.push("s2", "y", seq=4)
        assert seq.next_gap_deadline() == 5.0  # s1's gap, opened at 0
        now[0] = 5.0
        seq.expire_gaps()
        assert seq.next_gap_deadline() == 7.0  # s2's remains

    def test_flush_held_resets_stopwatches(self):
        seq, now = self.make()
        seq.push("s", "b", seq=1)
        seq.flush_held()
        now[0] = 100.0
        assert seq.expire_gaps() == []
        assert seq.next_gap_deadline() is None
