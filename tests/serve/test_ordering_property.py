"""Property: serving preserves per-source FIFO and batch-replay decisions.

Hypothesis drives N concurrent sources submitting interleaved context
streams (optionally with scrambled explicit sequence numbers) through
the full service path -- admission, sequencer, batcher, engine pump,
drain.  Two invariants must hold on every run:

1. **per-source FIFO** -- the engine observes (and decides) each
   source's contexts in that source's sequence order;
2. **replay equivalence** -- the decision event sequence is
   byte-identical (as a JSON signature) to ``ShardedEngine.run`` over
   the release order as one batch stream.

Together these pin the serving tentpole's correctness claim: the
front-door adds concurrency and batching without changing a single
resolution decision.
"""

import asyncio
import json
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.engine import EngineConfig, ShardedEngine
from repro.middleware.bus import (
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
)
from repro.serve import IngestService, ServeConfig
from repro.serve.sequencer import SourceSequencer

TYPES = ("loc", "badge", "rfid", "temp", "free")
SUBJECTS = ("s1", "s2")


def make_constraints():
    return [
        parse_constraint(
            "c0",
            "forall a in loc, forall b in badge : "
            "same_subject(a, b) implies within_time(a, b, 5.0)",
        ),
        parse_constraint(
            "c1",
            "forall a in rfid, forall b in temp : "
            "same_subject(a, b) implies within_time(a, b, 3.0)",
        ),
    ]


def make_engine(use_window):
    return ShardedEngine(
        make_constraints(),
        strategy="drop-bad",
        config=EngineConfig(shards=2, mode="inline", use_window=use_window),
    )


def subscribe_events(bus, events):
    bus.subscribe(
        ContextDelivered, lambda e: events.append(("D", e.context.ctx_id))
    )
    bus.subscribe(
        ContextDiscarded, lambda e: events.append(("X", e.context.ctx_id))
    )
    bus.subscribe(
        ContextExpired, lambda e: events.append(("E", e.context.ctx_id))
    )


def build_streams(seed, n_sources, per_source):
    """Per-source context lists with per-source increasing timestamps."""
    rng = random.Random(seed)
    streams = []
    for s in range(n_sources):
        source = f"src{s}"
        t = 0.0
        contexts = []
        for i in range(per_source):
            t += rng.random() * 2.0
            contexts.append(
                Context(
                    ctx_id=f"{source}-{i}",
                    ctx_type=rng.choice(TYPES),
                    subject=rng.choice(SUBJECTS),
                    value=float(i),
                    timestamp=t,
                    lifespan=rng.choice((float("inf"), 8.0)),
                    source=source,
                    corrupted=rng.random() < 0.2,
                )
            )
        streams.append(contexts)
    return streams


def interleave(streams, seed, scramble):
    """One global arrival order of (source, seq, ctx) triples.

    ``scramble=True`` permutes each source's send order but keeps the
    true order in explicit ``seq`` -- the reorder buffer must undo it.
    """
    rng = random.Random(seed ^ 0xA5A5)
    arrivals = []
    for contexts in streams:
        order = list(range(len(contexts)))
        if scramble:
            rng.shuffle(order)
        arrivals.append([(contexts[i].source, i, contexts[i]) for i in order])
    merged = []
    while any(arrivals):
        lane = rng.choice([a for a in arrivals if a])
        merged.append(lane.pop(0))
    return merged


def run_live(arrivals, use_window, batch_max_size):
    """Submit through the full service; returns (events, report)."""

    async def main():
        engine = make_engine(use_window)
        service = IngestService(
            engine,
            config=ServeConfig(
                port=0, batch_max_size=batch_max_size, batch_max_delay=0.0
            ),
        )
        events = []
        subscribe_events(engine.bus, events)
        await service.start()
        for source, seq, ctx in arrivals:
            result = service.submit_record(ctx, source=source, seq=seq)
            assert result.admitted, result.reason
            await asyncio.sleep(0)  # let the pump interleave with sends
        report = await service.drain()
        return events, report

    return asyncio.run(main())


def run_replay(release_order, use_window):
    """The reference: one closed-loop run over the same release order."""
    engine = make_engine(use_window)
    events = []
    subscribe_events(engine.bus, events)
    engine.run(release_order)
    return events


def expected_release_order(arrivals):
    """What the sequencer releases, computed by a fresh sequencer."""
    reference = SourceSequencer()
    released = []
    for source, seq, ctx in arrivals:
        released.extend(
            item for _, item in reference.push(source, ctx, seq)
        )
    released.extend(item for _, item in reference.flush_held())
    return released


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n_sources=st.integers(min_value=1, max_value=4),
    per_source=st.integers(min_value=0, max_value=8),
    scramble=st.booleans(),
    use_window=st.integers(min_value=0, max_value=4),
    batch_max_size=st.sampled_from((1, 3, 64)),
)
def test_serving_preserves_order_and_decisions(
    seed, n_sources, per_source, scramble, use_window, batch_max_size
):
    streams = build_streams(seed, n_sources, per_source)
    arrivals = interleave(streams, seed, scramble)

    live_events, report = run_live(arrivals, use_window, batch_max_size)
    # Zero loss: every admitted context reached a terminal decision.
    # (decided counts terminal *events*, which can exceed the context
    # count -- a delivered context whose lifespan later lapses in the
    # pool is tallied again as expired.)
    assert report["lost"] == 0
    decided_ids = set(cid for _, cid in live_events)
    assert decided_ids == set(ctx.ctx_id for _, _, ctx in arrivals)

    # 1. Per-source FIFO: the deliveries an application observes for
    # one source appear in that source's sequence order.  (Discard and
    # expiry events interleave with deferred deliveries by design --
    # their exact order is pinned by the replay signature below.)
    for contexts in streams:
        source_ids = set(c.ctx_id for c in contexts)
        delivered = [
            cid for kind, cid in live_events
            if kind == "D" and cid in source_ids
        ]
        expected = [
            c.ctx_id for c in contexts if c.ctx_id in set(delivered)
        ]
        assert delivered == expected, (
            f"per-source delivery order violated: "
            f"{delivered} != {expected}"
        )

    # 2. Byte-identical decision signature vs batch replay of the
    # release order.
    release_order = expected_release_order(arrivals)
    replay_events = run_replay(release_order, use_window)
    live_signature = json.dumps(live_events).encode()
    replay_signature = json.dumps(replay_events).encode()
    assert live_signature == replay_signature
