"""Graceful shutdown: every admitted context reaches a decision.

The regression pinned here is the front-door's zero-loss contract:
whatever state an admitted context is in when shutdown begins --
buffered in the batcher, held for a sequence gap, queued for the pump,
or pending its use window inside the engine -- draining resolves it.
``lost`` must be exactly 0 in every drain report.
"""

import asyncio

from repro.obs import Telemetry
from repro.serve import IngestService, ServeConfig
from repro.serve.loadgen import build_app_engine, prepare_records


def make_service(**config_kwargs) -> IngestService:
    telemetry = Telemetry(enabled=True)
    engine = build_app_engine("rfid", shards=2, telemetry=telemetry)
    return IngestService(
        engine,
        config=ServeConfig(port=0, **config_kwargs),
        telemetry=telemetry,
    )


def test_drain_resolves_everything_admitted():
    async def main():
        service = make_service(batch_max_delay=0.001)
        await service.start()
        for record in prepare_records("rfid", 80):
            assert service.submit_record(record).admitted
        report = await service.drain()
        assert report["lost"] == 0
        assert report["admitted"] == 80
        assert report["decided"] == 80
        assert (
            report["delivered"] + report["discarded"] + report["expired"]
            == 80
        )

    asyncio.run(main())


def test_drain_flushes_batcher_buffered_contexts():
    async def main():
        # A huge linger + huge batch: nothing would flush on its own.
        service = make_service(batch_max_delay=300.0, batch_max_size=10_000)
        await service.start()
        for record in prepare_records("rfid", 25):
            assert service.submit_record(record).admitted
        assert len(service.batcher) == 25  # all still buffered
        report = await service.drain()
        assert report["lost"] == 0
        assert report["decided"] == 25

    asyncio.run(main())


def test_drain_resolves_sequencer_held_contexts():
    async def main():
        service = make_service(batch_max_delay=0.001)
        await service.start()
        records = prepare_records("rfid", 10)
        # Explicit seqs 1..9 with seq 0 never sent: all held for a gap
        # that will not fill before shutdown.
        for i, record in enumerate(records[1:], start=1):
            result = service.submit_record(record, source="gapped", seq=i)
            assert result.admitted
            assert result.released == 0
        assert service.sequencer.pending("gapped") == 9
        report = await service.drain()
        assert report["lost"] == 0
        assert report["admitted"] == 9
        assert report["decided"] == 9

    asyncio.run(main())


def test_drain_works_even_if_start_was_never_called():
    async def main():
        service = make_service(batch_max_delay=300.0)
        for record in prepare_records("rfid", 5):
            service.submit_record(record)
        report = await service.drain()
        assert report["lost"] == 0
        assert report["decided"] == 5

    asyncio.run(main())


def test_arrivals_during_drain_are_shed_closed():
    async def main():
        service = make_service()
        await service.start()
        records = prepare_records("rfid", 3)
        service.submit_record(records[0])
        await service.drain()
        result = service.submit_record(records[1])
        assert not result.admitted
        assert result.reason == "closed"
        assert service.admission.shed["closed"] == 1

    asyncio.run(main())


def test_signal_driven_server_shutdown_drains_to_zero_loss():
    """The transport path: request_shutdown (the SIGINT/SIGTERM
    handler's body) must produce the same zero-loss drain."""
    from repro.serve import IngestServer
    from repro.serve.http import HttpClient

    async def main():
        service = make_service(batch_max_delay=300.0, batch_max_size=10_000)
        server = IngestServer(service)
        host, port = await server.start()
        runner = asyncio.get_running_loop().create_task(
            server.run(install_signal_handlers=False)
        )
        await asyncio.sleep(0)  # let run() reach its wait
        client = await HttpClient.connect(host, port)
        status, payload = await client.post(
            "/contexts", {"contexts": prepare_records("rfid", 40)}
        )
        assert status == 202 and payload["accepted"] == 40
        await client.close()
        assert len(service.batcher) == 40  # admitted, none decided yet
        server.request_shutdown("test")
        report = await runner
        assert report["lost"] == 0
        assert report["admitted"] == 40
        assert report["decided"] == 40

    asyncio.run(main())
