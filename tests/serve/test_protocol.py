"""Wire-format parsing: defaults, round-trip, rejection."""

import math

import pytest

from repro.core.context import Context
from repro.serve.protocol import (
    ParseError,
    context_from_record,
    record_from_context,
)

MINIMAL = {"ctx_id": "c1", "ctx_type": "loc", "subject": "s1"}


def test_minimal_record_with_defaults():
    ctx, seq = context_from_record(dict(MINIMAL), default_timestamp=12.5)
    assert ctx.ctx_id == "c1"
    assert ctx.timestamp == 12.5
    assert math.isinf(ctx.lifespan)
    assert ctx.source == "unknown"
    assert seq is None


def test_round_trip_preserves_fields():
    original = Context(
        ctx_id="c9",
        ctx_type="rfid",
        subject="tag1",
        value=(1.0, 2.0),
        timestamp=3.5,
        lifespan=60.0,
        source="reader-2",
        corrupted=True,
        attributes=(("k", "v"),),
    )
    record = record_from_context(original, seq=4)
    assert record["seq"] == 4
    ctx, seq = context_from_record(record)
    assert seq == 4
    assert ctx == original


def test_infinite_lifespan_round_trips_as_sentinel():
    ctx, _ = context_from_record(dict(MINIMAL), default_timestamp=0.0)
    record = record_from_context(ctx)
    assert record["lifespan"] == "Infinity"
    again, _ = context_from_record(record)
    assert math.isinf(again.lifespan)


@pytest.mark.parametrize(
    "record",
    [
        "not a mapping",
        {},
        {**MINIMAL, "ctx_id": ""},
        {**MINIMAL, "ctx_type": 7},
        {**MINIMAL, "seq": -1},
        {**MINIMAL, "seq": "first"},
        {**MINIMAL, "timestamp": "noon"},
    ],
)
def test_rejected_records(record):
    with pytest.raises(ParseError):
        context_from_record(record, default_timestamp=0.0)


def test_missing_timestamp_without_default_is_an_error():
    with pytest.raises(ParseError):
        context_from_record(dict(MINIMAL))


def test_list_value_becomes_tuple():
    ctx, _ = context_from_record(
        {**MINIMAL, "value": [1, 2]}, default_timestamp=0.0
    )
    assert ctx.value == (1, 2)
