"""Engine + telemetry integration: merged registries across run modes.

The engine's accounting invariant: whatever the execution mode, the
parent bundle's registry ends up holding the sum of every shard's
accounting, and ``EngineMetrics.from_registry`` reads the same totals
the event stream implies.  Worker bundles travel as snapshots over the
result queues; a worker that died mid-serialization must degrade to a
warning, not corrupt the merge.
"""

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.workload import scalability_workload
from repro.obs import Telemetry

N_CONTEXTS = 240
SHARDS = 4


def run_engine(mode, telemetry):
    constraints, contexts = scalability_workload(N_CONTEXTS)
    engine = ShardedEngine(
        constraints,
        strategy="drop-latest",
        config=EngineConfig(shards=SHARDS, mode=mode, use_window=8),
        telemetry=telemetry,
    )
    return engine.run(contexts)


class TestMergedRegistries:
    @pytest.mark.parametrize("mode", ["inline", "local", "process"])
    def test_parent_registry_sums_shard_accounting(self, mode):
        telemetry = Telemetry(enabled=True)
        result = run_engine(mode, telemetry)
        registry = telemetry.registry

        delivered = sum(
            registry.value(
                "engine_shard_delivered_total", {"shard": str(shard)}
            )
            for shard in range(SHARDS)
        )
        discarded = sum(
            registry.value(
                "engine_shard_discarded_total", {"shard": str(shard)}
            )
            for shard in range(SHARDS)
        )
        routed = sum(
            registry.value(
                "engine_shard_contexts_total", {"shard": str(shard)}
            )
            for shard in range(SHARDS)
        )
        assert delivered == result.metrics.delivered_total == len(result.delivered)
        assert discarded == result.metrics.discarded_total == len(result.discarded)
        assert routed == N_CONTEXTS

    @pytest.mark.parametrize("mode", ["inline", "local"])
    def test_stage_histograms_and_span_counts_merge(self, mode):
        telemetry = Telemetry(enabled=True)
        result = run_engine(mode, telemetry)
        counts = telemetry.tracer.counts
        # One deliver span per delivery, one discard span per discard,
        # whichever threads (or the inline loop) produced them.
        assert counts.get("stage.deliver", 0) == result.metrics.delivered_total
        assert counts.get("stage.discard", 0) == result.metrics.discarded_total
        from repro.obs.telemetry import STAGE_HISTOGRAM

        histogram = telemetry.registry.histogram(
            STAGE_HISTOGRAM, labels={"stage": "check"}
        )
        assert histogram.count > 0

    def test_from_registry_matches_event_derived_metrics(self):
        telemetry = Telemetry(enabled=True)
        result = run_engine("inline", telemetry)
        view = EngineMetrics.from_registry(
            telemetry.registry, mode="inline", shards=SHARDS
        )
        assert view.delivered_total == result.metrics.delivered_total
        assert view.discarded_total == result.metrics.discarded_total
        assert view.contexts_total == result.metrics.contexts_total
        assert [s.shard_id for s in view.per_shard] == list(range(SHARDS))

    def test_dead_worker_reads_as_zeros_not_corruption(self):
        # A shard that never flushed (e.g. its worker died) must read
        # as zeros in the view, and a mangled snapshot must merge to a
        # warning rather than an exception.
        telemetry = Telemetry(enabled=True)
        run_engine("inline", telemetry)
        telemetry.merge_snapshot({"metrics": {"families": {}, "series": "x"}})
        telemetry.merge_snapshot("not-a-snapshot")
        view = EngineMetrics.from_registry(
            telemetry.registry, mode="inline", shards=SHARDS + 2
        )
        dead = [s for s in view.per_shard if s.shard_id >= SHARDS]
        assert all(s.contexts == 0 and s.delivered == 0 for s in dead)
