"""Tests for the Telemetry bundle: stage timers, counters, snapshots."""

import pytest

from repro.obs.telemetry import NULL_TELEMETRY, STAGE_HISTOGRAM, Telemetry


class TestStageTiming:
    def test_stage_records_histogram_and_span(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.stage("check", ctx_id="c1"):
            pass
        histogram = telemetry.registry.histogram(
            STAGE_HISTOGRAM, labels={"stage": "check"}
        )
        assert histogram.count == 1
        (span,) = telemetry.tracer.spans()
        assert span.name == "stage.check"
        assert span.attrs == {"ctx_id": "c1"}
        assert span.duration == pytest.approx(histogram.sum, abs=1e-4)

    def test_stage_timer_reuse_accumulates(self):
        telemetry = Telemetry(enabled=True)
        timer = telemetry.stage_timer("deliver")
        for _ in range(4):
            with timer:
                pass
        histogram = telemetry.registry.histogram(
            STAGE_HISTOGRAM, labels={"stage": "deliver"}
        )
        assert histogram.count == 4
        assert telemetry.tracer.counts["stage.deliver"] == 4

    def test_stage_timer_error_annotation_is_per_use(self):
        telemetry = Telemetry(enabled=True)
        timer = telemetry.stage_timer("resolve")
        with pytest.raises(KeyError):
            with timer:
                raise KeyError("x")
        with timer:
            pass
        first, second = telemetry.tracer.spans()
        assert first.attrs == {"error": "KeyError"}
        assert second.attrs == {}

    def test_span_timer_is_a_bare_reusable_span(self):
        telemetry = Telemetry(enabled=True)
        timer = telemetry.span_timer("check.incremental")
        with timer:
            pass
        assert telemetry.tracer.counts["check.incremental"] == 1
        # No histogram family was created for a bare span.
        assert STAGE_HISTOGRAM not in telemetry.registry.families()

    def test_stage_nests_under_open_span(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("engine.batch") as batch:
            with telemetry.stage("check"):
                pass
        spans = {s.name: s for s in telemetry.tracer.spans()}
        assert spans["stage.check"].parent_id == batch.span_id


class TestDisabled:
    def test_disabled_bundle_records_nothing(self):
        telemetry = Telemetry.disabled()
        with telemetry.stage("check"):
            pass
        with telemetry.span("x"):
            pass
        with telemetry.stage_timer("deliver"):
            pass
        with telemetry.span_timer("check.incremental"):
            pass
        telemetry.count("ctx_total")
        assert telemetry.registry.families() == []
        assert telemetry.tracer.total_spans() == 0

    def test_null_telemetry_is_shared_and_disabled(self):
        assert not NULL_TELEMETRY.enabled
        assert not NULL_TELEMETRY.tracer.enabled


class TestCountersAndSnapshots:
    def test_count_increments_labeled_counter(self):
        telemetry = Telemetry(enabled=True)
        telemetry.count("discards_total", 2, labels={"strategy": "drop-bad"})
        telemetry.count("discards_total", labels={"strategy": "drop-bad"})
        assert (
            telemetry.registry.value(
                "discards_total", {"strategy": "drop-bad"}
            )
            == 3
        )

    def test_snapshot_merge_round_trip(self):
        worker = Telemetry(enabled=True)
        with worker.stage("deliver"):
            pass
        worker.count("ctx_total")
        parent = Telemetry(enabled=True)
        parent.merge_snapshot(worker.snapshot())
        assert parent.registry.value("ctx_total") == 1
        assert parent.tracer.counts["stage.deliver"] == 1

    def test_merge_snapshot_tolerates_garbage(self):
        telemetry = Telemetry(enabled=True)
        telemetry.merge_snapshot(None)
        telemetry.merge_snapshot("junk")
        assert telemetry.registry.families() == []

    def test_clear_resets_cached_stage_histograms(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.stage("check"):
            pass
        telemetry.clear()
        assert telemetry.registry.families() == []
        with telemetry.stage("check"):
            pass
        histogram = telemetry.registry.histogram(
            STAGE_HISTOGRAM, labels={"stage": "check"}
        )
        assert histogram.count == 1
