"""Tests for the span tracer: nesting, the ring, export and merging."""

import json

import pytest

from repro.obs.tracer import SpanRecord, SpanTracer


class TestSpanProduction:
    def test_nested_spans_record_parent_ids(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        spans = {s.name: s for s in tracer.spans()}
        assert spans["inner"].parent_id == outer.span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].span_id == inner.span_id
        # Inner closed first: the ring is oldest-first.
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_sibling_spans_share_no_parent(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert all(s.parent_id is None for s in tracer.spans())

    def test_attrs_and_error_annotation(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom", ctx_id="c1"):
                raise RuntimeError("nope")
        (span,) = tracer.spans()
        assert span.attrs == {"ctx_id": "c1", "error": "RuntimeError"}
        assert span.duration >= 0.0

    def test_reusable_span_records_per_entry(self):
        tracer = SpanTracer()
        timer = tracer.reusable_span("hot")
        for _ in range(3):
            with timer:
                pass
        assert tracer.counts["hot"] == 3
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == 3

    def test_reusable_span_error_does_not_pollute_later_uses(self):
        tracer = SpanTracer()
        timer = tracer.reusable_span("hot")
        with pytest.raises(ValueError):
            with timer:
                raise ValueError("once")
        with timer:
            pass
        first, second = tracer.spans()
        assert first.attrs == {"error": "ValueError"}
        assert second.attrs == {}

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("x"):
            pass
        with tracer.reusable_span("y"):
            pass
        assert tracer.spans() == []
        assert tracer.total_spans() == 0


class TestRing:
    def test_ring_evicts_but_counts_survive(self):
        tracer = SpanTracer(ring_size=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s3", "s4"]
        assert tracer.total_spans() == 5
        assert sum(tracer.counts.values()) == 5

    def test_ring_size_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(ring_size=0)

    def test_slowest_orders_by_duration(self):
        tracer = SpanTracer()
        for name, duration in (("fast", 0.001), ("slow", 0.5), ("mid", 0.1)):
            tracer._close(name, 0.0, duration, 0, None, {})
        assert [s.name for s in tracer.slowest(2)] == ["slow", "mid"]


class TestExportMerge:
    def test_export_jsonl_round_trips(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("outer", k="v"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        written = tracer.export_jsonl(path)
        assert written == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        records = [SpanRecord.from_dict(json.loads(line)) for line in lines]
        assert [r.name for r in records] == ["inner", "outer"]
        assert records[1].attrs == {"k": "v"}

    def test_snapshot_merge_adds_counts_and_concatenates_rings(self):
        parent = SpanTracer()
        with parent.span("stage.deliver"):
            pass
        worker = SpanTracer()
        with worker.span("stage.deliver"):
            pass
        with worker.span("stage.check"):
            pass
        parent.merge_snapshot(worker.snapshot())
        assert parent.counts == {"stage.deliver": 2, "stage.check": 1}
        assert len(parent.spans()) == 3

    def test_merge_tolerates_garbage(self):
        tracer = SpanTracer()
        tracer.merge_snapshot(None)
        tracer.merge_snapshot("junk")
        tracer.merge_snapshot({"counts": "oops", "spans": 3})
        assert tracer.total_spans() == 0

    def test_clear(self):
        tracer = SpanTracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.counts == {}
