"""Tests for the TelemetryService middleware plug-in."""

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.manager import Middleware
from repro.obs import TelemetryService
from repro.obs.telemetry import STAGE_HISTOGRAM


def loc(ctx_id, x, t):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject="p",
        value=(float(x), 0.0),
        timestamp=float(t),
    )


def build_middleware():
    checker = ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )
    return Middleware(checker, make_strategy("drop-latest"), use_window=1)


class TestTelemetryService:
    def test_bus_events_become_counters(self):
        middleware = build_middleware()
        service = TelemetryService()
        middleware.plug_in(service)
        # b violates the velocity constraint against a -> one discard.
        middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 9.0, 1.0)])
        registry = service.telemetry.registry
        assert registry.value("contexts_received_total") == 2
        assert registry.value("inconsistencies_detected_total") == 1
        assert registry.value("contexts_discarded_total") == 1
        assert registry.value("contexts_delivered_total") == 1
        assert registry.value("bus_events_total") >= 5
        assert registry.value("pool_size") >= 0

    def test_attach_wires_stage_timers_into_same_registry(self):
        middleware = build_middleware()
        service = TelemetryService()
        middleware.plug_in(service)
        middleware.receive_all([loc("a", 0.0, 0.0), loc("b", 0.1, 1.0)])
        registry = service.telemetry.registry
        histogram = registry.histogram(STAGE_HISTOGRAM, labels={"stage": "receive"})
        assert histogram.count == 2
        assert service.telemetry.tracer.counts["stage.deliver"] == 2

    def test_detach_unsubscribes_and_reattach_does_not_double_count(self):
        first = build_middleware()
        service = TelemetryService()
        first.plug_in(service)
        first.receive_all([loc("a", 0.0, 0.0)])
        detached = first.unplug("telemetry")
        assert detached is service

        # Events after detach must not be counted.
        first.receive_all([loc("b", 0.1, 1.0)])
        registry = service.telemetry.registry
        assert registry.value("contexts_received_total") == 1

        # Re-attach to a fresh middleware: counting resumes, single-fold.
        second = build_middleware()
        second.plug_in(service)
        second.receive_all([loc("c", 0.0, 0.0)])
        assert registry.value("contexts_received_total") == 2

    def test_shared_bundle_can_be_injected(self):
        from repro.obs import Telemetry

        bundle = Telemetry(enabled=True)
        middleware = build_middleware()
        middleware.plug_in(TelemetryService(bundle))
        assert middleware.telemetry is bundle
