"""Tests for telemetry sidecar files and their renderers."""

import json

import pytest

from repro.obs import (
    Telemetry,
    read_sidecar,
    sidecar_slowest_spans,
    sidecar_summary,
    stage_histogram_nonempty,
    write_sidecar,
)


def recorded_telemetry():
    telemetry = Telemetry(enabled=True)
    with telemetry.stage("check"):
        pass
    with telemetry.stage("deliver"):
        pass
    telemetry.count("ctx_total", 7, help="Contexts seen")
    return telemetry


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "TELEMETRY_x.json"
        written = write_sidecar(
            path, recorded_telemetry(), meta={"benchmark": "unit"}
        )
        document = read_sidecar(path)
        assert document == written
        assert document["version"] == 1
        assert document["meta"] == {"benchmark": "unit"}
        assert document["span_counts"] == {
            "stage.check": 1,
            "stage.deliver": 1,
        }
        assert len(document["spans"]) == 2

    def test_read_rejects_non_sidecar(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"something": "else"}), encoding="utf-8")
        with pytest.raises(ValueError, match="not a telemetry sidecar"):
            read_sidecar(path)

    def test_read_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_sidecar(tmp_path / "absent.json")


class TestRenderers:
    def test_stage_histogram_nonempty(self, tmp_path):
        path = tmp_path / "TELEMETRY_x.json"
        write_sidecar(path, recorded_telemetry())
        document = read_sidecar(path)
        assert stage_histogram_nonempty(document, "check")
        assert stage_histogram_nonempty(document, "deliver")
        assert not stage_histogram_nonempty(document, "resolve")

    def test_summary_lists_counters_histograms_spans(self, tmp_path):
        path = tmp_path / "TELEMETRY_x.json"
        document = write_sidecar(
            path, recorded_telemetry(), meta={"benchmark": "unit"}
        )
        text = sidecar_summary(document)
        assert "benchmark: unit" in text
        assert "ctx_total: 7" in text
        assert "repro_stage_seconds {stage=check}" in text
        assert "stage.deliver: 1" in text

    def test_slowest_spans_ordered_and_capped(self):
        document = {
            "metrics": {},
            "spans": [
                {"name": "fast", "duration": 0.001},
                {"name": "slow", "duration": 0.5, "attrs": {"k": "v"}},
                {"name": "mid", "duration": 0.1},
            ],
        }
        text = sidecar_slowest_spans(document, top=2)
        lines = text.splitlines()
        assert "slow" in lines[1] and "k=v" in lines[1]
        assert "mid" in lines[2]
        assert len(lines) == 3

    def test_slowest_spans_empty(self):
        text = sidecar_slowest_spans({"metrics": {}, "spans": []})
        assert "(no spans recorded)" in text
