"""Tests for the metrics registry: instruments, snapshots, merging."""

import logging
import threading

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_overwrites(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3.0

    def test_histogram_buckets_must_be_sorted_unique(self):
        with pytest.raises(ValueError):
            Histogram([0.2, 0.1])
        with pytest.raises(ValueError):
            Histogram([0.1, 0.1])
        with pytest.raises(ValueError):
            Histogram([])

    def test_histogram_observe_places_in_le_buckets(self):
        histogram = Histogram([0.1, 1.0])
        histogram.observe(0.05)   # <= 0.1
        histogram.observe(0.5)    # <= 1.0
        histogram.observe(2.0)    # +Inf slot
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(2.55)

    def test_histogram_percentile(self):
        histogram = Histogram([0.1, 1.0])
        for _ in range(9):
            histogram.observe(0.05)
        histogram.observe(0.5)
        assert histogram.percentile(0.5) == 0.1
        assert histogram.percentile(1.0) == 1.0
        assert Histogram([0.1]).percentile(0.5) == 0.0
        with pytest.raises(ValueError):
            histogram.percentile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", labels={"shard": "0"})
        second = registry.counter("requests_total", labels={"shard": "0"})
        assert first is second
        other = registry.counter("requests_total", labels={"shard": "1"})
        assert other is not first

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("busy")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("busy")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("busy")

    def test_histogram_family_fixes_buckets(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat", buckets=(0.1, 1.0))
        # Later calls reuse the family's buckets even if they ask for
        # different ones -- merging depends on one layout per family.
        second = registry.histogram("lat", labels={"s": "1"}, buckets=(9.0,))
        assert second.buckets == first.buckets == (0.1, 1.0)

    def test_value_of_absent_series_is_zero(self):
        registry = MetricsRegistry()
        assert registry.value("nope") == 0.0
        registry.histogram("hist").observe(0.1)
        assert registry.value("hist") == 0.0  # histograms have no value

    def test_series_labels_and_families(self):
        registry = MetricsRegistry()
        registry.counter("a", labels={"x": "2"})
        registry.counter("a", labels={"x": "1"})
        registry.gauge("b")
        assert registry.series_labels("a") == [{"x": "1"}, {"x": "2"}]
        assert registry.families() == ["a", "b"]

    def test_default_buckets_cover_sub_millisecond_and_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0001
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0

    def test_thread_safety_of_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("ctx_total", labels={"shard": "0"}).inc(5)
        registry.gauge("pool_size").set(3)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        return registry

    def test_snapshot_is_json_plain(self):
        import json

        snapshot = self._populated().snapshot()
        json.dumps(snapshot)  # must not raise
        assert set(snapshot) == {"families", "series"}

    def test_merge_adds_counters_and_histograms_keeps_gauge_max(self):
        left = self._populated()
        right = self._populated()
        right.gauge("pool_size").set(9)
        merged = left.merge_snapshot(right.snapshot())
        assert merged == 3
        assert left.value("ctx_total", {"shard": "0"}) == 10
        assert left.value("pool_size") == 9  # max, not sum
        histogram = left.histogram("lat", buckets=(0.1, 1.0))
        assert histogram.count == 2
        assert histogram.counts == [2, 0, 0]

    def test_merge_skips_malformed_entries_with_warning(self, caplog):
        registry = self._populated()
        snapshot = self._populated().snapshot()
        # A worker that died mid-serialization: one entry lacks its
        # value, another references an unknown family.
        snapshot["series"].append({"name": "ctx_total", "labels": {}})
        snapshot["series"].append({"name": "ghost", "value": 1})
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            merged = registry.merge_snapshot(snapshot)
        assert merged == 3  # the healthy entries still landed
        assert registry.value("ctx_total", {"shard": "0"}) == 10
        assert "skipping unmergeable telemetry series" in caplog.text

    def test_merge_rejects_bucket_layout_mismatch(self, caplog):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        foreign = MetricsRegistry()
        foreign.histogram("lat", buckets=(0.5,)).observe(0.05)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            merged = registry.merge_snapshot(foreign.snapshot())
        assert merged == 0
        assert registry.histogram("lat", buckets=(0.1, 1.0)).count == 1

    def test_merge_tolerates_garbage_documents(self, caplog):
        registry = MetricsRegistry()
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert registry.merge_snapshot(None) == 0
            assert registry.merge_snapshot("nonsense") == 0
            assert registry.merge_snapshot({"series": "oops"}) == 0
        assert registry.families() == []

    def test_merge_live_registry(self):
        left = self._populated()
        right = self._populated()
        assert left.merge(right) == 3
        assert left.value("ctx_total", {"shard": "0"}) == 10

    def test_clear_drops_everything(self):
        registry = self._populated()
        registry.clear()
        assert registry.families() == []
        assert registry.value("ctx_total", {"shard": "0"}) == 0.0
