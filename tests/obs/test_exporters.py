"""Tests for the Prometheus-text and JSON exporters."""

import json

from repro.obs.exporters import json_text, prometheus_text, registry_prometheus
from repro.obs.registry import MetricsRegistry


def populated_registry():
    registry = MetricsRegistry()
    registry.counter(
        "ctx_total", help="Contexts seen", labels={"shard": "0"}
    ).inc(5)
    registry.gauge("pool_size", help="Live pool").set(3)
    histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    return registry


class TestPrometheusText:
    def test_headers_and_scalar_series(self):
        text = registry_prometheus(populated_registry())
        assert "# HELP ctx_total Contexts seen" in text
        assert "# TYPE ctx_total counter" in text
        assert 'ctx_total{shard="0"} 5' in text
        assert "# TYPE pool_size gauge" in text
        assert "pool_size 3" in text

    def test_histogram_le_buckets_are_cumulative_with_inf(self):
        text = registry_prometheus(populated_registry())
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text
        assert "lat_seconds_sum 5.55" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("weird", labels={"k": 'a"b\\c\nd'}).inc()
        text = registry_prometheus(registry)
        assert r'weird{k="a\"b\\c\nd"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert prometheus_text(MetricsRegistry().snapshot()) == ""

    def test_render_from_sidecar_style_snapshot(self):
        # The CLI path renders snapshots loaded from JSON, where tuples
        # became lists; the exporter must not care.
        snapshot = json.loads(json_text(populated_registry().snapshot()))
        assert 'ctx_total{shard="0"} 5' in prometheus_text(snapshot)


class TestJsonText:
    def test_stable_sorted_output(self):
        registry = populated_registry()
        first = json_text(registry.snapshot())
        second = json_text(registry.snapshot())
        assert first == second
        document = json.loads(first)
        assert document["families"]["ctx_total"]["type"] == "counter"
        names = [entry["name"] for entry in document["series"]]
        assert names == sorted(names)
