"""Configurable histogram buckets: fine ladder, stage override, no-ops."""

from repro.obs import FINE_LATENCY_BUCKETS, Telemetry
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS
from repro.obs.telemetry import NULL_HISTOGRAM, STAGE_HISTOGRAM


class TestFineLatencyBuckets:
    def test_strictly_increasing(self):
        assert list(FINE_LATENCY_BUCKETS) == sorted(set(FINE_LATENCY_BUCKETS))

    def test_extends_both_ends_of_the_default_ladder(self):
        assert FINE_LATENCY_BUCKETS[0] < DEFAULT_LATENCY_BUCKETS[0]
        assert FINE_LATENCY_BUCKETS[-1] > DEFAULT_LATENCY_BUCKETS[-1]

    def test_default_layout_unchanged(self):
        # Backward compatibility: existing sidecars and process-mode
        # snapshots merge against this exact layout.
        assert DEFAULT_LATENCY_BUCKETS == (
            0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
            0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
        )


class TestStageBucketOverride:
    def test_default_stage_histogram_uses_default_buckets(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.stage("check"):
            pass
        histogram = telemetry._stage_histogram("check")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS

    def test_stage_buckets_parameter_overrides(self):
        telemetry = Telemetry(
            enabled=True, stage_buckets=FINE_LATENCY_BUCKETS
        )
        with telemetry.stage("check"):
            pass
        histogram = telemetry._stage_histogram("check")
        assert histogram.buckets == FINE_LATENCY_BUCKETS
        assert histogram.count == 1

    def test_override_applies_to_every_stage_of_the_bundle(self):
        telemetry = Telemetry(enabled=True, stage_buckets=(0.1, 1.0))
        for stage in ("receive", "resolve", "use"):
            assert telemetry._stage_histogram(stage).buckets == (0.1, 1.0)

    def test_family_layout_is_fixed_at_first_use(self):
        # Two bundles over one shared registry: the family keeps the
        # first layout (the merge contract), later bundles reuse it.
        first = Telemetry(enabled=True, stage_buckets=(0.5, 5.0))
        shared = first.registry
        first._stage_histogram("check")
        second = Telemetry(
            enabled=True, registry=shared, stage_buckets=FINE_LATENCY_BUCKETS
        )
        assert second._stage_histogram("check").buckets == (0.5, 5.0)

    def test_snapshot_records_the_custom_layout(self):
        telemetry = Telemetry(enabled=True, stage_buckets=(0.01, 0.1))
        telemetry._stage_histogram("deliver").observe(0.05)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["families"][STAGE_HISTOGRAM]["buckets"] == [0.01, 0.1]


class TestTelemetryHistogram:
    def test_enabled_bundle_returns_live_instrument(self):
        telemetry = Telemetry(enabled=True)
        histogram = telemetry.histogram(
            "serve_test_seconds", buckets=FINE_LATENCY_BUCKETS
        )
        histogram.observe(0.00003)
        assert histogram.count == 1
        assert histogram.percentile(0.5) == 0.00005

    def test_same_family_reuses_layout(self):
        telemetry = Telemetry(enabled=True)
        first = telemetry.histogram("h", buckets=(1.0, 2.0))
        second = telemetry.histogram("h", buckets=(9.0,))
        assert second is first
        assert second.buckets == (1.0, 2.0)

    def test_disabled_bundle_returns_shared_null(self):
        telemetry = Telemetry.disabled()
        histogram = telemetry.histogram("anything")
        assert histogram is NULL_HISTOGRAM
        histogram.observe(1.0)
        assert histogram.count == 0
        assert histogram.percentile(0.99) == 0.0
        # Nothing was created in the registry.
        assert telemetry.registry.families() == []
