"""Atomic JSON artifact writes + ruleset identity in sidecars.

``atomic_write_text`` is the crash-safety primitive behind telemetry
sidecars and BENCH files: a failed write must leave the previous
version byte-intact and no temp droppings behind.
"""

import json
import os

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.engine.metrics import write_bench_json
from repro.engine.workload import scalability_workload
from repro.obs import Telemetry, atomic_write_text, sidecar_summary, write_sidecar


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert list(tmp_path.iterdir()) == [path]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "artifact.json"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_crash_during_replace_preserves_old_content(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "precious")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at the replace boundary")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_text(path, "half-written garbage")
        monkeypatch.undo()
        assert path.read_text() == "precious"
        # The failed attempt's temp file was cleaned up.
        assert list(tmp_path.iterdir()) == [path]

    def test_crash_during_temp_write_leaves_no_droppings(
        self, tmp_path, monkeypatch
    ):
        from pathlib import Path

        path = tmp_path / "artifact.json"
        atomic_write_text(path, "precious")
        real_write_text = Path.write_text

        def exploding_write_text(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                real_write_text(self, "partial", encoding="utf-8")
                raise OSError("simulated crash mid-write")
            return real_write_text(self, *args, **kwargs)

        monkeypatch.setattr(Path, "write_text", exploding_write_text)
        with pytest.raises(OSError):
            atomic_write_text(path, "doomed")
        monkeypatch.undo()
        assert path.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [path]


class TestArtifactWritersAreAtomic:
    def test_write_sidecar_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "TELEMETRY_test.json"
        write_sidecar(path, Telemetry(enabled=True), meta={"k": "v"})
        assert json.loads(path.read_text())["meta"] == {"k": "v"}
        assert list(tmp_path.iterdir()) == [path]

    def test_write_bench_json_crash_preserves_other_workloads(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "BENCH_engine.json"
        write_bench_json(path, "workload_a", {"metric": 1})

        def exploding_replace(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            write_bench_json(path, "workload_b", {"metric": 2})
        monkeypatch.undo()
        document = json.loads(path.read_text())
        assert document == {"workload_a": {"metric": 1}}
        assert list(tmp_path.iterdir()) == [path]


class TestRulesetInfoInTelemetry:
    def test_engine_run_stamps_the_info_gauge(self, tmp_path):
        constraints, contexts = scalability_workload(
            60, scope_groups=2, types_per_group=2
        )
        telemetry = Telemetry(enabled=True)
        engine = ShardedEngine(
            constraints,
            config=EngineConfig(shards=2, use_window=4),
            telemetry=telemetry,
        )
        engine.run(contexts)
        labels = telemetry.registry.series_labels("repro_ruleset_info")
        assert labels == [{"ruleset_hash": engine.ruleset_hash}]
        assert (
            telemetry.registry.value("repro_ruleset_info", labels[0]) == 1.0
        )
        # ... and it survives into the sidecar + `repro obs summary`.
        path = tmp_path / "TELEMETRY_test.json"
        write_sidecar(path, telemetry)
        summary = sidecar_summary(json.loads(path.read_text()))
        assert "Gauges:" in summary
        assert engine.ruleset_hash in summary
