"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_compare_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "unknown-app"])


class TestScenarios:
    def test_prints_walkthrough_table(self):
        code, text = run_cli("scenarios")
        assert code == 0
        assert "D-Bad" in text
        assert "D-Lat" in text
        assert "NO" in text  # drop-latest fails scenario B


class TestCompare:
    def test_small_comparison_runs(self):
        code, text = run_cli(
            "compare",
            "call-forwarding",
            "--groups",
            "1",
            "--rates",
            "0.3",
        )
        assert code == 0
        assert "ctxUseRate" in text
        assert "Opt-R" in text


class TestCaseStudy:
    def test_prints_section_5_2_metrics(self):
        code, text = run_cli("case-study", "--seed", "3")
        assert code == 0
        assert "survival rate" in text
        assert "Rule 2'" in text


class TestTrace:
    def test_record_then_replay(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        code, text = run_cli(
            "trace",
            "record",
            "rfid",
            "--out",
            str(path),
            "--err",
            "0.2",
            "--seed",
            "3",
        )
        assert code == 0
        assert "wrote" in text
        assert path.exists()

        code, text = run_cli(
            "trace",
            "replay",
            str(path),
            "--strategy",
            "drop-bad",
            "--window",
            "20",
        )
        assert code == 0
        assert "replayed" in text
        assert "precision" in text
