"""Unit tests for the situation engine and view."""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.bus import SituationActivated
from repro.middleware.manager import Middleware
from repro.situations.situation import Situation, SituationEngine, SituationView


def badge(ctx_id, room, t, subject="peter", corrupted=False):
    return Context(
        ctx_id=ctx_id,
        ctx_type="badge",
        subject=subject,
        value=room,
        timestamp=float(t),
        corrupted=corrupted,
    )


class TestSituationView:
    def test_recent_with_filters(self, mk):
        view = SituationView()
        a = badge("a", "office-1", 1.0)
        b = badge("b", "office-2", 2.0, subject="alice")
        view.push(a, 1.0)
        view.push(b, 2.0)
        assert view.recent() == [a, b]
        assert view.recent(subject="alice") == [b]
        assert view.recent(ctx_type="location") == []
        assert view.recent(limit=1) == [b]

    def test_previous_same_type_and_subject(self):
        view = SituationView()
        a = badge("a", "office-1", 1.0)
        other = badge("x", "lab", 1.5, subject="alice")
        b = badge("b", "office-2", 2.0)
        view.push(a, 1.0)
        view.push(other, 1.5)
        view.push(b, 2.0)
        assert view.previous(b) is a
        assert view.previous(a) is None

    def test_window_evicts_oldest(self):
        view = SituationView(window=2)
        contexts = [badge(f"c{i}", "r", i) for i in range(3)]
        for ctx in contexts:
            view.push(ctx, ctx.timestamp)
        assert view.recent() == contexts[1:]

    def test_clear(self):
        view = SituationView()
        view.push(badge("a", "r", 1.0), 1.0)
        view.clear()
        assert view.recent() == []
        assert view.now == 0.0


class TestSituationEngine:
    def _middleware(self, situations, strategy="drop-latest", window=0):
        checker = ConstraintChecker(
            [parse_constraint("noop", "forall b in badge : true()")]
        )
        middleware = Middleware(
            checker, make_strategy(strategy), use_window=window
        )
        engine = SituationEngine(situations)
        middleware.plug_in(engine)
        return middleware, engine

    def test_duplicate_situation_names_rejected(self):
        trigger = lambda ctx, view: True
        with pytest.raises(ValueError, match="duplicate"):
            SituationEngine(
                [Situation("s", trigger), Situation("s", trigger)]
            )

    def test_activation_counted_per_delivery(self):
        situation = Situation(
            "at-desk", lambda ctx, view: ctx.value == "office-2"
        )
        middleware, engine = self._middleware([situation])
        middleware.receive_all(
            [
                badge("a", "office-2", 1.0),
                badge("b", "corridor", 2.0),
                badge("c", "office-2", 3.0),
            ]
        )
        assert engine.activations["at-desk"] == 2
        assert engine.total_activations() == 2

    def test_spurious_activations_tracked(self):
        situation = Situation("any", lambda ctx, view: True)
        middleware, engine = self._middleware([situation])
        middleware.receive_all(
            [
                badge("a", "office-2", 1.0),
                badge("b", "office-2", 2.0, corrupted=True),
            ]
        )
        assert engine.total_activations() == 2
        assert engine.total_spurious() == 1

    def test_activation_event_published(self):
        situation = Situation("any", lambda ctx, view: True)
        middleware, engine = self._middleware([situation])
        events = []
        middleware.bus.subscribe(SituationActivated, events.append)
        middleware.receive_all([badge("a", "office-2", 1.0)])
        assert len(events) == 1
        assert events[0].situation == "any"

    def test_undelivered_contexts_do_not_activate(self):
        """A context discarded by resolution never reaches situations."""
        checker = ConstraintChecker(
            [
                parse_constraint(
                    "no-teleport",
                    "forall b1 in badge, forall b2 in badge : "
                    "(same_subject(b1, b2) and before(b1, b2) "
                    "and within_time(b1, b2, 2.0)) "
                    "implies value_eq(b2, 'office-2')",
                )
            ]
        )
        middleware = Middleware(
            checker, make_strategy("drop-latest"), use_window=0
        )
        engine = SituationEngine(
            [Situation("in-lab", lambda ctx, view: ctx.value == "lab")]
        )
        middleware.plug_in(engine)
        middleware.receive_all(
            [badge("a", "office-2", 1.0), badge("b", "lab", 2.0)]
        )
        # b violated the constraint, was discarded, never activated.
        assert engine.activations["in-lab"] == 0

    def test_reset(self):
        situation = Situation("any", lambda ctx, view: True)
        middleware, engine = self._middleware([situation])
        middleware.receive_all([badge("a", "office-2", 1.0)])
        engine.reset()
        assert engine.total_activations() == 0
        assert engine.view.recent() == []
