"""Unit tests for the situation-trigger combinators."""

from repro.core.context import Context
from repro.situations.library import (
    co_located,
    entered,
    left,
    make_situation,
    position_within,
    value_in,
    value_is,
)
from repro.situations.situation import SituationView


def badge(ctx_id, room, t, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="badge",
        subject=subject,
        value=room,
        timestamp=float(t),
    )


def loc(ctx_id, pos, t, subject="peter"):
    return Context(
        ctx_id=ctx_id,
        ctx_type="location",
        subject=subject,
        value=pos,
        timestamp=float(t),
    )


def view_of(*contexts):
    view = SituationView()
    for ctx in contexts:
        view.push(ctx, ctx.timestamp)
    return view


class TestValueTriggers:
    def test_value_is(self):
        trigger = value_is("badge", "office-2", subject="peter")
        ctx = badge("a", "office-2", 1.0)
        assert trigger(ctx, view_of(ctx))
        assert not trigger(badge("b", "lab", 1.0), view_of())
        assert not trigger(
            badge("c", "office-2", 1.0, subject="alice"), view_of()
        )

    def test_value_in(self):
        trigger = value_in("badge", ["lab", "lounge"])
        assert trigger(badge("a", "lab", 1.0), view_of())
        assert trigger(badge("b", "lounge", 1.0), view_of())
        assert not trigger(badge("c", "office-1", 1.0), view_of())

    def test_wrong_type_never_triggers(self):
        trigger = value_is("badge", "office-2")
        assert not trigger(loc("a", (0, 0), 1.0), view_of())


class TestTransitions:
    def test_entered_fires_on_transition(self):
        trigger = entered("badge", "meeting")
        prev = badge("a", "corridor", 1.0)
        now = badge("b", "meeting", 2.0)
        view = view_of(prev, now)
        assert trigger(now, view)

    def test_entered_fires_without_history(self):
        trigger = entered("badge", "meeting")
        now = badge("a", "meeting", 1.0)
        assert trigger(now, view_of(now))

    def test_entered_suppressed_while_staying(self):
        trigger = entered("badge", "meeting")
        first = badge("a", "meeting", 1.0)
        second = badge("b", "meeting", 2.0)
        view = view_of(first, second)
        assert not trigger(second, view)

    def test_left_fires_on_exit(self):
        trigger = left("badge", "meeting")
        inside = badge("a", "meeting", 1.0)
        outside = badge("b", "corridor", 2.0)
        view = view_of(inside, outside)
        assert trigger(outside, view)
        assert not trigger(inside, view_of(inside))


class TestSpatial:
    def test_position_within_box(self):
        trigger = position_within("location", (0.0, 0.0, 10.0, 10.0))
        assert trigger(loc("a", (5.0, 5.0), 1.0), view_of())
        assert not trigger(loc("b", (15.0, 5.0), 1.0), view_of())

    def test_non_positional_value_ignored(self):
        trigger = position_within("location", (0.0, 0.0, 10.0, 10.0))
        weird = Context(
            ctx_id="w",
            ctx_type="location",
            subject="p",
            value="not-a-point",
            timestamp=1.0,
        )
        assert not trigger(weird, view_of())


class TestCoLocation:
    def test_fires_when_both_in_same_room_recently(self):
        trigger = co_located("badge", "peter", "alice", max_age=5.0)
        peter = badge("p", "lab", 10.0)
        alice = badge("a", "lab", 8.0, subject="alice")
        view = view_of(alice, peter)
        assert trigger(peter, view)

    def test_requires_recency(self):
        trigger = co_located("badge", "peter", "alice", max_age=5.0)
        peter = badge("p", "lab", 20.0)
        alice = badge("a", "lab", 8.0, subject="alice")
        view = view_of(alice, peter)
        assert not trigger(peter, view)

    def test_requires_same_room(self):
        trigger = co_located("badge", "peter", "alice", max_age=5.0)
        peter = badge("p", "lab", 10.0)
        alice = badge("a", "lounge", 9.0, subject="alice")
        view = view_of(alice, peter)
        assert not trigger(peter, view)

    def test_third_party_never_triggers(self):
        trigger = co_located("badge", "peter", "alice", max_age=5.0)
        bob = badge("b", "lab", 10.0, subject="bob")
        assert not trigger(bob, view_of(bob))


class TestMakeSituation:
    def test_wraps_trigger(self):
        situation = make_situation(
            "s", value_is("badge", "lab"), description="d"
        )
        assert situation.name == "s"
        assert situation.description == "d"
        assert situation.matches(badge("a", "lab", 1.0), view_of())
