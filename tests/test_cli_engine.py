"""Tests for the ``repro engine`` CLI subcommand."""

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestEngineParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])

    def test_run_validates_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine", "run", "unknown-app"])

    def test_run_validates_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["engine", "run", "rfid", "--mode", "turbo"]
            )


class TestEngineRun:
    def test_resolves_rfid_workload(self):
        code, text = run_cli(
            "engine", "run", "rfid", "--shards", "4",
            "--strategy", "drop-bad",
        )
        assert code == 0
        assert "4 shard(s) [inline]" in text
        assert "delivered" in text and "discarded" in text
        assert "shard 0:" in text and "shard 3:" in text

    def test_local_mode_and_time_window(self):
        code, text = run_cli(
            "engine", "run", "call-forwarding", "--shards", "2",
            "--mode", "local", "--delay", "5.0",
        )
        assert code == 0
        assert "[local]" in text


class TestEngineBench:
    def test_bench_prints_speedup_and_writes_json(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        code, text = run_cli(
            "engine", "bench", "--shards", "1", "2",
            "--contexts", "300", "--repeats", "1",
            "--json", str(path),
        )
        assert code == 0
        assert "contexts/second by shard count" in text
        assert "speedup 2_shards_vs_1" in text
        document = json.loads(path.read_text(encoding="utf-8"))
        record = document["engine_scalability"]
        assert set(record["contexts_per_second_by_shards"]) == {"1", "2"}
        assert record["workload"]["n_contexts"] == 300
