"""Extended CLI coverage: ablations, smart phone, strategy listing."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSmartPhoneCLI:
    def test_compare_smart_phone(self):
        code, text = run_cli(
            "compare", "smart-phone", "--groups", "1", "--rates", "0.3"
        )
        assert code == 0
        assert "ctxUseRate" in text

    def test_trace_roundtrip_smart_phone(self, tmp_path):
        path = tmp_path / "phone.jsonl"
        code, _ = run_cli(
            "trace", "record", "smart-phone", "--out", str(path),
            "--err", "0.2", "--seed", "4",
        )
        assert code == 0
        code, text = run_cli(
            "trace", "replay", str(path), "--strategy", "drop-bad",
            "--window", "8",
        )
        assert code == 0
        assert "replayed" in text


class TestAblationCLI:
    def test_window_ablation(self):
        code, text = run_cli("ablation", "window", "--groups", "1")
        assert code == 0
        assert "D-Bad ctxUse%" in text

    def test_tiebreak_ablation(self):
        code, text = run_cli("ablation", "tiebreak", "--groups", "1")
        assert code == 0
        assert "tie-discard" in text


class TestCompareOptions:
    def test_custom_window_and_rates(self):
        code, text = run_cli(
            "compare",
            "rfid",
            "--groups",
            "1",
            "--rates",
            "0.2",
            "0.4",
            "--window",
            "15",
        )
        assert code == 0
        assert "20%" in text and "40%" in text
