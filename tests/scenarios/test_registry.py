"""The pack registry: builtins, registration semantics, file loading."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    dumps_json,
    dumps_toml,
    get_pack,
    load_pack_file,
    pack_names,
    register_pack,
    unregister_pack,
)

from ._packs import tiny_pack

BUILTINS = (
    "calendar-presence",
    "call-forwarding",
    "health-telemetry",
    "rfid",
    "smart-home",
    "smart-phone",
)


class TestBuiltins:
    def test_all_builtins_registered(self):
        names = pack_names()
        for name in BUILTINS:
            assert name in names

    def test_legacy_packs_are_app_backed(self):
        for name in ("call-forwarding", "rfid", "smart-phone"):
            assert not get_pack(name).portable

    def test_new_packs_are_portable(self):
        for name in ("smart-home", "calendar-presence", "health-telemetry"):
            assert get_pack(name).portable

    def test_unknown_pack_lists_known(self):
        with pytest.raises(KeyError, match="registered:"):
            get_pack("no-such-pack")


class TestRegistration:
    def test_register_and_unregister(self):
        pack = tiny_pack(name="tiny-reg-test")
        try:
            register_pack(pack)
            assert get_pack("tiny-reg-test") is pack
            with pytest.raises(ValueError, match="already registered"):
                register_pack(pack)
            register_pack(pack, replace=True)
        finally:
            unregister_pack("tiny-reg-test")
        assert "tiny-reg-test" not in pack_names()


class TestLoadPackFile:
    def test_toml_file(self, tmp_path):
        pack = tiny_pack()
        path = tmp_path / "tiny.toml"
        path.write_text(dumps_toml(pack), encoding="utf-8")
        assert load_pack_file(path) == pack

    def test_json_file(self, tmp_path):
        pack = tiny_pack()
        path = tmp_path / "tiny.json"
        path.write_text(dumps_json(pack), encoding="utf-8")
        assert load_pack_file(path) == pack

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "tiny.yaml"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match=".toml or .json"):
            load_pack_file(path)


class TestAppShims:
    def test_as_pack_matches_registered(self):
        from repro.apps import (
            CallForwardingApp,
            RFIDAnomaliesApp,
            SmartPhoneApp,
        )

        for app, name in (
            (CallForwardingApp(), "call-forwarding"),
            (RFIDAnomaliesApp(), "rfid"),
            (SmartPhoneApp(), "smart-phone"),
        ):
            pack = app.as_pack()
            assert pack.name == name
            assert pack.use_window == get_pack(name).use_window
