"""The shipped declarative packs: validation, ground truth, measures.

Every builtin pack must pass ``validate_pack`` including the envelope
checks; the three new declarative packs must additionally be genuinely
inconsistent at their reference error rate (``min_raw_mi``), resolvable
(the best strategy's residual problematic ratio stays inside the
envelope), and runnable under the full roster with Livshits measures
per strategy.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    FULL_ROSTER,
    PackRunner,
    get_pack,
    pack_names,
    rank_strategies,
    validate_pack,
)

NEW_PACKS = ("smart-home", "calendar-presence", "health-telemetry")

_SWEEPS = {}


def roster_sweep(name):
    """One shared stream per pack, replayed under the full roster."""
    if name not in _SWEEPS:
        _SWEEPS[name] = PackRunner(get_pack(name)).sweep(
            groups=1, err_rates=(get_pack(name).envelope.reference_err_rate,)
        )
    return _SWEEPS[name]


class TestValidation:
    @pytest.mark.parametrize("name", sorted(pack_names()))
    def test_every_builtin_validates(self, name):
        assert validate_pack(get_pack(name)) == []

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_new_packs_carry_the_full_roster(self, name):
        assert get_pack(name).strategies == FULL_ROSTER


class TestGroundTruthAndMeasures:
    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_reference_stream_is_inconsistent(self, name):
        pack = get_pack(name)
        results = roster_sweep(name)
        raw = results[0].measures_raw
        assert raw.mi_count >= pack.envelope.min_raw_mi
        assert raw.drastic == 1
        assert raw.problematic > 0 and raw.repair > 0
        assert raw.per_constraint  # violations attribute to constraints

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_full_roster_runs_with_measures(self, name):
        results = roster_sweep(name)
        assert sorted({r.strategy for r in results}) == sorted(FULL_ROSTER)
        for result in results:
            assert result.measures_delivered.universe == len(
                result.delivered_ids
            )
            # Resolution never increases the measured inconsistency.
            assert (
                result.measures_delivered.mi_count
                <= result.measures_raw.mi_count
            )

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_best_strategy_inside_the_envelope(self, name):
        pack = get_pack(name)
        rows = rank_strategies(roster_sweep(name))
        best = rows[0]
        assert (
            best["residual_problematic_ratio"]
            <= pack.envelope.max_residual_ratio
        )

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_strategies_actually_differ(self, name):
        """The pack discriminates: the roster does not collapse into
        one identical decision stream."""
        signatures = {r.signature() for r in roster_sweep(name)}
        assert len(signatures) > 1

    @pytest.mark.parametrize("name", NEW_PACKS)
    def test_situations_fire(self, name):
        results = roster_sweep(name)
        assert any(r.metrics.situations_activated > 0 for r in results)
