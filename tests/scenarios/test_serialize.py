"""Serialization round-trips for portable packs.

The serializer promises exact equality through both syntaxes:
``pack == loads_toml(dumps_toml(pack)) == loads_json(dumps_json(pack))``.
Deterministic cases pin the shipped packs; a hypothesis property
generates packs with adversarial strings and floats and asserts the
same equality.
"""

from __future__ import annotations

import tomllib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    ChannelSpec,
    ConstraintSpec,
    MetricsEnvelope,
    PhaseSpec,
    PredicateSpec,
    ScenarioPack,
    SituationSpec,
    WorkloadSpec,
    dumps_json,
    dumps_toml,
    get_pack,
    loads_json,
    loads_toml,
    pack_from_document,
    pack_names,
    pack_to_document,
)

from ._packs import tiny_pack

DECLARATIVE = [
    name for name in pack_names() if get_pack(name).portable
]


class TestShippedPackRoundTrips:
    def test_declarative_packs_exist(self):
        assert len(DECLARATIVE) >= 3

    @pytest.mark.parametrize("name", DECLARATIVE)
    def test_toml_round_trip(self, name):
        pack = get_pack(name)
        assert loads_toml(dumps_toml(pack)) == pack

    @pytest.mark.parametrize("name", DECLARATIVE)
    def test_json_round_trip(self, name):
        pack = get_pack(name)
        assert loads_json(dumps_json(pack)) == pack

    @pytest.mark.parametrize("name", DECLARATIVE)
    def test_document_round_trip(self, name):
        pack = get_pack(name)
        assert pack_from_document(pack_to_document(pack)) == pack


class TestSerializeErrors:
    def test_non_portable_pack_rejected(self):
        pack = get_pack("call-forwarding")
        with pytest.raises(ValueError):
            pack_to_document(pack)

    def test_unsupported_schema_rejected(self):
        doc = pack_to_document(tiny_pack())
        doc["schema"] = 99
        with pytest.raises(ValueError):
            pack_from_document(doc)

    def test_missing_workload_rejected(self):
        doc = pack_to_document(tiny_pack())
        del doc["workload"]
        with pytest.raises(ValueError):
            pack_from_document(doc)

    def test_emitted_toml_is_parseable(self):
        tomllib.loads(dumps_toml(tiny_pack()))


# -- hypothesis property ------------------------------------------------------

_IDENT = st.from_regex(r"[a-z][a-z0-9_-]{0,8}", fullmatch=True)
_NAME = st.from_regex(r"[a-z0-9][a-z0-9-]{0,15}", fullmatch=True)
_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)
_FLOAT = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
_POS = st.floats(min_value=0.1, max_value=100.0)


@st.composite
def _channels(draw):
    names = draw(
        st.lists(_IDENT, min_size=1, max_size=3, unique=True)
    )
    channels = []
    for name in names:
        kind = draw(st.sampled_from(("state", "numeric")))
        states = (
            tuple(
                draw(
                    st.lists(_IDENT, min_size=2, max_size=4, unique=True)
                )
            )
            if kind == "state"
            else ()
        )
        low = draw(st.floats(min_value=0.0, max_value=5.0))
        channels.append(
            ChannelSpec(
                name=name,
                kind=kind,
                period=draw(_POS),
                offset=draw(st.floats(min_value=0.0, max_value=10.0)),
                lifespan=draw(_POS),
                corruptible=draw(st.booleans()),
                states=states,
                jitter=draw(st.floats(min_value=0.0, max_value=1.0)),
                corrupt_shift=(
                    low,
                    low + draw(st.floats(min_value=0.0, max_value=5.0)),
                ),
            )
        )
    return tuple(channels)


@st.composite
def _packs(draw):
    channels = draw(_channels())
    phases = []
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        lo = draw(_POS)
        values = {}
        for channel in channels:
            if draw(st.booleans()):
                continue  # channel silent in this phase
            values[channel.name] = (
                draw(st.sampled_from(channel.states))
                if channel.kind == "state"
                else draw(_FLOAT)
            )
        phases.append(
            PhaseSpec(
                name=f"phase-{index}",
                min_duration=lo,
                max_duration=lo + draw(st.floats(min_value=0.0, max_value=20.0)),
                values=values,
            )
        )
    workload = WorkloadSpec(
        subjects=tuple(
            draw(st.lists(_IDENT, min_size=1, max_size=2, unique=True))
        ),
        channels=channels,
        phases=tuple(phases),
        id_prefix=draw(_IDENT),
        subject_stagger=draw(st.floats(min_value=0.0, max_value=10.0)),
    )
    predicates = (
        PredicateSpec(
            name="band",
            kind="numeric_range",
            params={"low": draw(_FLOAT), "high": draw(_FLOAT)},
        ),
        PredicateSpec(
            name="known",
            kind="value_known",
            params={"values": draw(st.lists(_TEXT, max_size=3))},
        ),
    )
    return ScenarioPack(
        name=draw(_NAME),
        title=draw(_TEXT),
        description=draw(_TEXT),
        predicates=predicates,
        constraint_specs=(
            ConstraintSpec(
                name="c0",
                formula=f"forall x in {channels[0].name} : band(x)",
                description=draw(_TEXT),
            ),
        ),
        situation_specs=(
            SituationSpec(
                name="s0",
                kind="value_is",
                params={"ctx_type": channels[0].name, "value": draw(_TEXT)},
            ),
        ),
        workload=workload,
        strategies=tuple(
            draw(
                st.lists(
                    st.sampled_from(("opt-r", "drop-bad", "drop-random")),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
        ),
        err_rates=tuple(
            draw(
                st.lists(
                    st.floats(min_value=0.05, max_value=0.95),
                    min_size=1,
                    max_size=4,
                )
            )
        ),
        use_window=draw(st.integers(min_value=0, max_value=30)),
        default_seed=draw(st.integers(min_value=0, max_value=2**31)),
        envelope=MetricsEnvelope(
            min_contexts=draw(st.integers(min_value=0, max_value=100)),
            max_contexts=draw(
                st.one_of(
                    st.none(), st.integers(min_value=100, max_value=10_000)
                )
            ),
            min_raw_mi=draw(st.integers(min_value=0, max_value=10)),
            max_residual_ratio=draw(st.floats(min_value=0.0, max_value=1.0)),
            reference_err_rate=draw(st.floats(min_value=0.05, max_value=0.95)),
        ),
        workload_kwargs={"duration_scale": draw(_POS)},
    )


class TestPropertyRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(pack=_packs())
    def test_toml_and_json_round_trip(self, pack):
        assert loads_toml(dumps_toml(pack)) == pack
        assert loads_json(dumps_json(pack)) == pack
