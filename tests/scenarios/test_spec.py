"""Unit tests for the scenario-pack spec layer.

Predicate compilation, param freezing, situation building, the
ApplicationBundle surface of :class:`ScenarioPack`, and the
``validate_pack`` linter.
"""

from __future__ import annotations

import pytest

from repro.core.context import Context
from repro.scenarios import (
    ChannelSpec,
    PhaseSpec,
    PredicateSpec,
    SituationSpec,
    WorkloadSpec,
    validate_pack,
)
from repro.scenarios.predicates import freeze_params, thaw_params

from ._packs import tiny_pack, tiny_workload


def ctx(value, ctx_type="t", subject="s", ts=0.0) -> Context:
    return Context(
        ctx_id=f"x-{value}",
        ctx_type=ctx_type,
        subject=subject,
        value=value,
        timestamp=ts,
    )


class TestParamFreezing:
    def test_round_trip(self):
        params = {"edges": [["a", "b"], ["b", "c"]], "self_ok": True}
        assert thaw_params(freeze_params(params)) == params

    def test_key_sorted_and_hashable(self):
        frozen = freeze_params({"b": 2, "a": [1, 2]})
        assert frozen == (("a", (1, 2)), ("b", 2))
        hash(frozen)

    def test_nested_mappings_rejected(self):
        with pytest.raises(ValueError):
            freeze_params({"bad": {"nested": 1}})


class TestPredicateSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PredicateSpec(name="p", kind="no-such-kind")

    def test_graph_reachable(self):
        fn = PredicateSpec(
            name="adj",
            kind="graph_reachable",
            params={"edges": [["a", "b"]], "self_ok": True},
        ).build()
        assert fn(ctx("a"), ctx("b"))
        assert fn(ctx("b"), ctx("a"))  # edges are symmetric
        assert fn(ctx("a"), ctx("a"))
        assert not fn(ctx("a"), ctx("c"))

    def test_graph_reachable_self_not_ok(self):
        fn = PredicateSpec(
            name="adj",
            kind="graph_reachable",
            params={"edges": [["a", "b"]], "self_ok": False},
        ).build()
        assert not fn(ctx("a"), ctx("a"))

    def test_step_le(self):
        fn = PredicateSpec(
            name="step", kind="step_le", params={"limit": 2.0}
        ).build()
        assert fn(ctx(1.0), ctx(3.0))
        assert not fn(ctx(1.0), ctx(3.5))
        # Non-numeric values fail the predicate rather than crash.
        assert not fn(ctx("oops"), ctx(1.0))

    def test_rank_le(self):
        fn = PredicateSpec(
            name="ramp",
            kind="rank_le",
            params={"order": ["rest", "light", "exercise"], "limit": 1},
        ).build()
        assert fn(ctx("rest"), ctx("light"))
        assert not fn(ctx("rest"), ctx("exercise"))
        assert not fn(ctx("rest"), ctx("unknown"))

    def test_compatible(self):
        fn = PredicateSpec(
            name="pairs",
            kind="compatible",
            params={"pairs": [["asleep", "bedroom"]]},
        ).build()
        assert fn(ctx("asleep"), ctx("bedroom"))
        assert not fn(ctx("bedroom"), ctx("asleep"))  # not symmetric

    def test_compatible_symmetric(self):
        fn = PredicateSpec(
            name="pairs",
            kind="compatible",
            params={"pairs": [["a", "b"]], "symmetric": True},
        ).build()
        assert fn(ctx("b"), ctx("a"))

    def test_value_known(self):
        fn = PredicateSpec(
            name="known", kind="value_known", params={"values": ["x", "y"]}
        ).build()
        assert fn(ctx("x"))
        assert not fn(ctx("z"))

    def test_numeric_range(self):
        fn = PredicateSpec(
            name="band",
            kind="numeric_range",
            params={"low": 5.0, "high": 40.0},
        ).build()
        assert fn(ctx(5.0)) and fn(ctx(40.0))
        assert not fn(ctx(4.9)) and not fn(ctx("n/a"))

    def test_build_names_the_callable(self):
        fn = PredicateSpec(name="band", kind="numeric_range").build()
        assert fn.__name__ == "band"


class TestSituationSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SituationSpec(name="s", kind="no-such-kind")

    def test_build_value_is(self):
        situation = SituationSpec(
            name="door-open",
            kind="value_is",
            params={"ctx_type": "door", "value": "open"},
        ).build()
        assert situation.name == "door-open"


class TestWorkloadSpec:
    def test_deterministic_per_seed(self):
        workload = tiny_workload()
        a = workload.generate(0.3, 7)
        b = workload.generate(0.3, 7)
        assert [c.ctx_id for c in a] == [c.ctx_id for c in b]
        assert [c.value for c in a] == [c.value for c in b]
        c = workload.generate(0.3, 8)
        assert [x.ctx_id for x in a] != [x.ctx_id for x in c]

    def test_sorted_unique_and_ground_truth(self):
        stream = tiny_workload().generate(0.3, 7)
        stamps = [c.timestamp for c in stream]
        assert stamps == sorted(stamps)
        ids = [c.ctx_id for c in stream]
        assert len(set(ids)) == len(ids)
        assert any(c.corrupted for c in stream)
        assert any(not c.corrupted for c in stream)

    def test_zero_err_rate_is_clean(self):
        stream = tiny_workload().generate(0.0, 7)
        assert stream and not any(c.corrupted for c in stream)

    def test_phase_values_must_reference_channels(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                subjects=("a",),
                channels=(
                    ChannelSpec(name="door", states=("open", "closed")),
                ),
                phases=(
                    PhaseSpec(
                        name="p",
                        min_duration=5.0,
                        max_duration=5.0,
                        values=(("ghost", "x"),),
                    ),
                ),
            )

    def test_corruptible_state_channel_needs_states(self):
        with pytest.raises(ValueError):
            ChannelSpec(name="door", states=("only-one",))


class TestScenarioPack:
    def test_portable(self):
        assert tiny_pack().portable
        assert not tiny_pack(workload=None, workload_factory=lambda e, s: []).portable

    def test_build_registry_includes_spec_predicates(self):
        registry = tiny_pack().build_registry()
        assert "meter_in_band" in registry
        assert "same_subject" in registry  # standard registry base

    def test_build_constraints_and_situations(self):
        pack = tiny_pack()
        constraints = pack.build_constraints()
        assert [c.name for c in constraints] == [
            "tiny-meter-band",
            "tiny-meter-step",
        ]
        assert [s.name for s in pack.build_situations()] == ["tiny-door-open"]

    def test_generate_workload_merges_kwargs(self):
        pack = tiny_pack(workload_kwargs={"duration_scale": 0.5})
        short = pack.generate_workload(0.2, 3)
        full = pack.generate_workload(0.2, 3, duration_scale=1.0)
        assert 0 < len(short) < len(full)

    def test_workload_required(self):
        pack = tiny_pack(workload=None)
        with pytest.raises(ValueError):
            pack.generate_workload(0.2, 3)


class TestValidatePack:
    def test_tiny_pack_is_clean(self):
        assert validate_pack(tiny_pack()) == []

    def test_bad_name(self):
        errors = validate_pack(tiny_pack(name="Bad Name"), check_workload=False)
        assert any("kebab-case" in e for e in errors)

    def test_unknown_strategy(self):
        errors = validate_pack(
            tiny_pack(strategies=("drop-bad", "no-such")),
            check_workload=False,
        )
        assert any("unknown strategies" in e for e in errors)

    def test_err_rate_out_of_range(self):
        errors = validate_pack(
            tiny_pack(err_rates=(0.2, 1.5)), check_workload=False
        )
        assert any("outside (0, 1)" in e for e in errors)

    def test_unknown_predicate_in_formula(self):
        from repro.scenarios import ConstraintSpec

        errors = validate_pack(
            tiny_pack(
                constraint_specs=(
                    ConstraintSpec(
                        name="bad",
                        formula="forall m in meter : no_such_pred(m)",
                    ),
                )
            ),
            check_workload=False,
        )
        assert any("unknown predicates" in e for e in errors)

    def test_orphan_constraint_type(self):
        from repro.scenarios import ConstraintSpec

        errors = validate_pack(
            tiny_pack(
                constraint_specs=(
                    ConstraintSpec(
                        name="orphan",
                        formula="forall g in ghost : meter_in_band(g)",
                    ),
                )
            ),
            check_workload=False,
        )
        assert any("no channel produces" in e for e in errors)

    def test_envelope_violation_caught(self):
        from repro.scenarios import MetricsEnvelope

        errors = validate_pack(
            tiny_pack(
                envelope=MetricsEnvelope(
                    min_contexts=10_000, reference_err_rate=0.3
                )
            )
        )
        assert any("envelope requires" in e for e in errors)

    def test_no_constraints_flagged(self):
        errors = validate_pack(
            tiny_pack(constraint_specs=()), check_workload=False
        )
        assert any("no constraints" in e for e in errors)
