"""Shared tiny declarative packs for the scenario test suite.

Small on purpose: a two-channel workload short enough that a full
middleware run takes milliseconds, yet corrupted contexts reliably
violate at least one constraint (the door sensor reports a room off
the two-room floor plan, or the meter jumps out of band).
"""

from __future__ import annotations

from repro.scenarios import (
    ChannelSpec,
    ConstraintSpec,
    MetricsEnvelope,
    PhaseSpec,
    PredicateSpec,
    ScenarioPack,
    SituationSpec,
    WorkloadSpec,
)


def tiny_workload() -> WorkloadSpec:
    return WorkloadSpec(
        subjects=("unit-a",),
        channels=(
            ChannelSpec(
                name="door",
                kind="state",
                period=2.0,
                states=("open", "closed"),
            ),
            ChannelSpec(
                name="meter",
                kind="numeric",
                period=2.0,
                offset=0.5,
                jitter=0.1,
                corrupt_shift=(5.0, 9.0),
            ),
        ),
        phases=(
            PhaseSpec(
                name="idle",
                min_duration=10.0,
                max_duration=16.0,
                values=(("door", "closed"), ("meter", 1.0)),
            ),
            PhaseSpec(
                name="busy",
                min_duration=10.0,
                max_duration=16.0,
                values=(("door", "open"), ("meter", 2.0)),
            ),
        ),
        id_prefix="tp",
    )


def tiny_pack(**overrides) -> ScenarioPack:
    fields = dict(
        name="tiny",
        title="Tiny Test Pack",
        description="Two channels, two phases, one subject.",
        predicates=(
            PredicateSpec(
                name="meter_in_band",
                kind="numeric_range",
                params={"low": 0.0, "high": 4.0},
            ),
            PredicateSpec(
                name="meter_step_ok",
                kind="step_le",
                params={"limit": 2.5},
            ),
        ),
        constraint_specs=(
            ConstraintSpec(
                name="tiny-meter-band",
                formula="forall m in meter : meter_in_band(m)",
            ),
            ConstraintSpec(
                name="tiny-meter-step",
                formula=(
                    "forall m1 in meter, forall m2 in meter : "
                    "(same_subject(m1, m2) and before(m1, m2) and "
                    "within_time(m1, m2, 4.5)) implies meter_step_ok(m1, m2)"
                ),
            ),
        ),
        situation_specs=(
            SituationSpec(
                name="tiny-door-open",
                kind="value_is",
                params={"ctx_type": "door", "value": "open"},
            ),
        ),
        workload=tiny_workload(),
        use_window=6,
        default_seed=3,
        err_rates=(0.2, 0.3),
        envelope=MetricsEnvelope(
            min_contexts=10, min_raw_mi=1, reference_err_rate=0.3
        ),
    )
    fields.update(overrides)
    return ScenarioPack(**fields)
