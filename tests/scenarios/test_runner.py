"""PackRunner semantics: hosts, rosters, sweeps, ranking, telemetry."""

from __future__ import annotations

import pytest

from repro.obs import Telemetry
from repro.scenarios import FULL_ROSTER, PackRunner, rank_strategies

from ._packs import tiny_pack


@pytest.fixture(scope="module")
def runner():
    return PackRunner(tiny_pack(), shards=2)


class TestSingleRun:
    def test_defaults_come_from_the_pack(self, runner):
        result = runner.run("drop-bad")
        assert result.err_rate == pytest.approx(0.3)
        assert result.seed == 3
        assert result.metrics.contexts_total == len(
            result.delivered_ids
        ) + len(result.discarded_ids)

    def test_unknown_host_rejected(self, runner):
        with pytest.raises(ValueError, match="unknown host"):
            runner.run("drop-bad", host="no-such-host")

    def test_runs_are_deterministic(self, runner):
        a = runner.run("drop-random", seed=9)
        b = runner.run("drop-random", seed=9)
        assert a.signature() == b.signature()

    def test_engine_hosts_agree_with_middleware(self, runner):
        """Same stream, same strategy: every host makes the same
        decisions.  Inline shares the middleware's bus so its signature
        is byte-identical; local workers flush their end-of-stream
        window tails shard by shard, so for context types no constraint
        references (the tiny pack's ``door`` channel) the delivered
        *order* can interleave differently at the tail.  The decision
        *content* -- which contexts were delivered and which were
        discarded, and the discard order -- must still agree exactly.
        (Every legacy-app golden pins full signature equality across
        all hosts; their channels are all constraint-referenced.)"""
        want = runner.run("drop-bad", host="middleware")
        inline = runner.run("drop-bad", host="inline")
        assert inline.signature() == want.signature()
        local = runner.run("drop-bad", host="local")
        assert set(local.delivered_ids) == set(want.delivered_ids)
        assert local.discarded_ids == want.discarded_ids

    def test_kernels_toggle_is_decision_neutral(self, runner):
        on = runner.run("drop-bad", host="inline", kernels=True)
        off = runner.run("drop-bad", host="inline", kernels=False)
        assert on.signature() == off.signature()

    def test_measures_cover_both_streams(self, runner):
        result = runner.run("drop-bad")
        assert result.measures_raw.universe == result.metrics.contexts_total
        assert result.measures_delivered.universe == len(result.delivered_ids)
        # The reference stream at err 0.3 is genuinely inconsistent, and
        # resolution must not make it worse.
        assert result.measures_raw.mi_count >= 1
        assert (
            result.measures_delivered.problematic
            <= result.measures_raw.problematic
        )

    def test_measures_false_skips_the_static_pass(self, runner):
        result = runner.run("drop-bad", measures=False)
        assert result.measures_raw.mi_count == 0
        assert result.measures_raw.universe == result.metrics.contexts_total

    def test_as_record_is_json_shaped(self, runner):
        import json

        record = runner.run("drop-bad").as_record()
        json.dumps(record)
        assert record["pack"] == "tiny"
        assert record["signature"] == runner.run("drop-bad").signature()

    def test_ledger_records_the_run(self, runner, tmp_path):
        from repro.ledger import verify_ledger

        path = tmp_path / "run.ledger.jsonl"
        result = runner.run("drop-bad", ledger_path=str(path))
        assert path.exists()
        verification = verify_ledger(str(path))
        assert verification.ok
        assert result.delivered_ids  # the run actually decided things


class TestSweep:
    def test_full_roster_in_one_invocation(self, runner):
        results = runner.sweep(groups=1, err_rates=(0.3,), measures=False)
        assert sorted({r.strategy for r in results}) == sorted(FULL_ROSTER)
        assert len(results) == len(FULL_ROSTER)

    def test_cells_share_streams_across_strategies(self, runner):
        results = runner.sweep(groups=1, err_rates=(0.3,), measures=False)
        totals = {r.metrics.contexts_total for r in results}
        seeds = {r.seed for r in results}
        assert len(totals) == 1  # one stream replayed under every strategy
        assert len(seeds) == 1

    def test_grid_size(self, runner):
        results = runner.sweep(
            groups=2,
            err_rates=(0.2, 0.3),
            strategies=("drop-bad", "drop-latest"),
            measures=False,
        )
        assert len(results) == 2 * 2 * 2


class TestRankStrategies:
    def test_ranking_is_sorted_and_complete(self, runner):
        results = runner.sweep(groups=1, err_rates=(0.3,))
        rows = rank_strategies(results)
        assert [set(r) >= {"strategy", "residual_problematic_ratio"} for r in rows]
        ratios = [r["residual_problematic_ratio"] for r in rows]
        assert ratios == sorted(ratios)
        assert {r["strategy"] for r in rows} == set(FULL_ROSTER)

    def test_drop_all_leaves_no_residual_mi(self, runner):
        """drop-all discards every inconsistency participant, so the
        delivered stream has no minimal inconsistent subsets left."""
        results = runner.sweep(
            groups=1, err_rates=(0.3,), strategies=("drop-all",)
        )
        assert all(r.measures_delivered.mi_count == 0 for r in results)


class TestTelemetry:
    def test_measures_emitted_through_the_registry(self):
        telemetry = Telemetry(enabled=True)
        runner = PackRunner(tiny_pack(), telemetry=telemetry)
        result = runner.run("drop-bad")
        registry = telemetry.registry
        assert "pack_inconsistency_measure" in registry.families()
        labels = registry.series_labels("pack_inconsistency_measure")
        assert any(
            row["measure"] == "mi_count" and row["stream"] == "raw"
            for row in labels
        )
        assert registry.value(
            "pack_inconsistency_measure",
            labels={
                "pack": "tiny",
                "strategy": "drop-bad",
                "host": "middleware",
                "stream": "raw",
                "measure": "mi_count",
            },
        ) == float(result.measures_raw.mi_count)
