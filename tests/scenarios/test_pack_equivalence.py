"""Legacy apps-as-packs must reproduce the golden decisions byte for byte.

The acceptance bar of the scenario-pack refactor: wrapping the three
hand-written applications as packs (``repro.scenarios.packs.legacy``)
changes NOTHING about their decisions.  Each pack's default
configuration is exactly the golden suite's recorded case
(``tests/runtime/_streams.APP_CASES``: err 0.3, seed 5, the small
stream kwargs), so a default :meth:`PackRunner.run` must hash to the
recorded signature on the middleware host and on every engine
mode x kernels combination.

A mismatch means the pack layer altered resolution behaviour -- never
update the goldens to make this pass.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.scenarios import PackRunner, get_pack

from ..runtime import _streams

GOLDEN_DIR = (
    pathlib.Path(__file__).parent.parent / "runtime" / "goldens"
)
APPS = json.loads((GOLDEN_DIR / "app_streams.json").read_text())

ENGINE_RUNS = [
    (mode, kernels)
    for mode in ("inline", "local", "process")
    for kernels in (True, False)
]


@pytest.fixture(scope="module")
def runners():
    # The golden engine runs were recorded on APP_SHARDS shards.
    return {
        name: PackRunner(get_pack(name), shards=_streams.APP_SHARDS)
        for name in APPS
    }


class TestPackDefaultsMatchGoldenCases:
    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_defaults_pin_the_recorded_case(self, app_key):
        """The pack's defaults ARE the golden case: strategy kwargs,
        window, error rate and seed need no overrides to reproduce it."""
        pack = get_pack(app_key)
        for key, _strategy, use_window, kwargs in _streams.APP_CASES:
            if key == app_key:
                assert pack.use_window == use_window
                assert dict(pack.workload_kwargs) == kwargs
        assert pack.default_seed == _streams.APP_SEED
        assert pack.envelope.reference_err_rate == pytest.approx(
            _streams.APP_ERR_RATE
        )


class TestMiddlewareEquivalence:
    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_signature_matches_golden(self, app_key, runners):
        golden = APPS[app_key]["runs"]["middleware"]
        result = runners[app_key].run("drop-bad", measures=False)
        assert result.metrics.contexts_total == APPS[app_key]["n_contexts"]
        assert len(result.delivered_ids) == golden["delivered"]
        assert len(result.discarded_ids) == golden["discarded"]
        assert result.signature() == golden["signature"]


class TestEngineEquivalence:
    @pytest.mark.parametrize("mode,kernels", ENGINE_RUNS)
    @pytest.mark.parametrize("app_key", sorted(APPS))
    def test_signature_matches_golden(self, app_key, mode, kernels, runners):
        key = f"{mode}-kernels-{'on' if kernels else 'off'}"
        golden = APPS[app_key]["runs"][key]
        result = runners[app_key].run(
            "drop-bad", host=mode, kernels=kernels, measures=False
        )
        assert len(result.delivered_ids) == golden["delivered"]
        assert len(result.discarded_ids) == golden["discarded"]
        assert result.signature() == golden["signature"]
