"""Integration tests asserting the paper's experimental claims (shape).

These are the Section 4.2 takeaways, checked at reduced scale so the
suite stays fast; the benchmarks regenerate the full figures.
"""

import pytest

from repro.apps.call_forwarding import CallForwardingApp
from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.experiments.harness import ComparisonConfig, run_comparison


@pytest.fixture(scope="module")
def cf_result():
    return run_comparison(
        CallForwardingApp(),
        ComparisonConfig(
            err_rates=(0.3,),
            groups_per_point=3,
            use_window=10,
            workload_kwargs=(("duration", 240.0),),
        ),
    )


@pytest.fixture(scope="module")
def rfid_result():
    return run_comparison(
        RFIDAnomaliesApp(),
        ComparisonConfig(
            err_rates=(0.3,),
            groups_per_point=3,
            use_window=20,
            workload_kwargs=(("items", 8),),
        ),
    )


class TestFigure9Claims:
    def test_opt_r_is_the_baseline(self, cf_result):
        point = cf_result.point("opt-r", 0.3)
        assert point.ctx_use_rate == pytest.approx(100.0)
        assert point.sit_act_rate == pytest.approx(100.0)

    def test_drop_bad_beats_drop_latest_and_drop_all(self, cf_result):
        bad = cf_result.point("drop-bad", 0.3)
        latest = cf_result.point("drop-latest", 0.3)
        all_ = cf_result.point("drop-all", 0.3)
        assert bad.ctx_use_rate > latest.ctx_use_rate
        assert bad.ctx_use_rate > all_.ctx_use_rate

    def test_drop_all_is_worst(self, cf_result):
        latest = cf_result.point("drop-latest", 0.3)
        all_ = cf_result.point("drop-all", 0.3)
        assert all_.ctx_use_rate < latest.ctx_use_rate

    def test_gap_between_drop_bad_and_oracle_remains(self, cf_result):
        """'there is still a gap between D-BAD and OPT-R' (Sec 4.2)."""
        bad = cf_result.point("drop-bad", 0.3)
        assert bad.ctx_use_rate < 100.0

    def test_baselines_lose_meaningful_context_share(self, cf_result):
        """D-LAT/D-ALL reduced rates by roughly 20-40% in the paper;
        at reduced scale we assert a clear (>5 point) reduction."""
        all_ = cf_result.point("drop-all", 0.3)
        assert all_.ctx_use_rate < 90.0


class TestFigure10Claims:
    def test_same_ordering_on_rfid(self, rfid_result):
        bad = rfid_result.point("drop-bad", 0.3)
        latest = rfid_result.point("drop-latest", 0.3)
        all_ = rfid_result.point("drop-all", 0.3)
        assert bad.ctx_use_rate > latest.ctx_use_rate
        assert bad.ctx_use_rate > all_.ctx_use_rate
        assert bad.sit_act_rate >= latest.sit_act_rate

    def test_precision_ordering(self, rfid_result):
        """Drop-bad identifies corrupted contexts more precisely."""
        bad = rfid_result.point("drop-bad", 0.3)
        latest = rfid_result.point("drop-latest", 0.3)
        assert bad.raw["removal_precision"] > latest.raw["removal_precision"]


class TestErrorRateTrend:
    def test_higher_error_rates_hurt_more(self):
        """Within a strategy, raising err_rate lowers the rates."""
        result = run_comparison(
            CallForwardingApp(),
            ComparisonConfig(
                strategies=("opt-r", "drop-all"),
                err_rates=(0.1, 0.4),
                groups_per_point=3,
                use_window=10,
                workload_kwargs=(("duration", 240.0),),
            ),
        )
        low = result.point("drop-all", 0.1)
        high = result.point("drop-all", 0.4)
        assert high.ctx_use_rate < low.ctx_use_rate
