"""Integration test for the one-command paper reproduction."""

import pytest

from repro.experiments.reproduce import reproduce_paper


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("repro") / "report.md"
    text = reproduce_paper(groups=2, out_path=path)
    return text, path


class TestReproducePaper:
    def test_report_written(self, report):
        text, path = report
        assert path.exists()
        assert path.read_text() == text

    def test_every_experiment_present(self, report):
        text, _ = report
        for heading in (
            "## Figures 1-5: scenario walkthroughs",
            "## Figure 9: Call Forwarding",
            "## Figure 10: RFID data anomalies",
            "## Section 5.2: Landmarc case study",
            "## Section 5.3: use-window ablation",
            "## Section 5.1: tie-break ablation",
            "## Section 5.2 open question",
        ):
            assert heading in text, heading

    def test_headline_artifacts_present(self, report):
        text, _ = report
        assert "ctxUseRate" in text
        assert "sitActRate" in text
        assert "Rule 2'" in text
        assert "96.5%" in text  # the paper's survival target appears
        assert "B=drop-bad" in text  # charts rendered

    def test_progress_callback_invoked(self, tmp_path):
        messages = []
        # groups=1 keeps this second invocation cheap.
        reproduce_paper(
            groups=1,
            out_path=tmp_path / "r.md",
            progress=messages.append,
        )
        assert any("Figure 9" in m for m in messages)
        assert any("case study" in m for m in messages)
