"""End-to-end integration tests: sources -> middleware -> application."""

import pytest

from repro.apps.call_forwarding import CallForwardingApp, ForwardingController
from repro.apps.rfid_anomalies import RFIDAnomaliesApp
from repro.core.context import ContextState
from repro.core.strategy import make_strategy
from repro.experiments.harness import run_group
from repro.middleware.manager import Middleware
from repro.situations.situation import SituationEngine


class TestCallForwardingEndToEnd:
    def test_full_pipeline_with_application_behavior(self):
        app = CallForwardingApp()
        contexts = app.generate_workload(0.2, seed=21, duration=200.0)
        middleware = Middleware(
            app.build_checker(), make_strategy("drop-bad"), use_window=10
        )
        engine = SituationEngine(app.build_situations())
        middleware.plug_in(engine)
        controller = ForwardingController(subject="peter")
        middleware.subscriptions.subscribe(
            "call-forwarding", controller.on_context, ctx_type="badge"
        )
        middleware.receive_all(contexts)

        log = middleware.resolution.log
        assert log.added == contexts
        assert len(log.delivered) > 0
        assert controller.decisions, "forwarding target never changed"
        # Every stream context ends in a terminal state.
        for ctx in contexts:
            if middleware.strategy.lifecycle.known(ctx):
                state = middleware.strategy.state_of(ctx)
                assert state in (
                    ContextState.CONSISTENT,
                    ContextState.INCONSISTENT,
                ) or ctx.is_expired(middleware.clock.now())

    def test_resolution_cleans_more_than_it_costs(self):
        """Drop-bad removes corrupted contexts at better precision than
        leaving everything in place (sanity of the whole pipeline)."""
        app = CallForwardingApp()
        contexts = app.generate_workload(0.3, seed=22, duration=300.0)
        m = run_group(
            app,
            make_strategy("drop-bad"),
            contexts,
            err_rate=0.3,
            seed=22,
            use_window=10,
        )
        assert m.contexts_discarded > 0
        assert m.removal_precision > 0.5
        assert m.survival_rate > 0.7


class TestRFIDEndToEnd:
    def test_full_pipeline(self):
        app = RFIDAnomaliesApp()
        contexts = app.generate_workload(0.2, seed=31, items=6)
        middleware = Middleware(
            app.build_checker(), make_strategy("drop-bad"), use_window=20
        )
        engine = SituationEngine(app.build_situations())
        middleware.plug_in(engine)
        middleware.receive_all(contexts)
        assert engine.total_activations() > 0
        assert middleware.resolution.log.delivered

    def test_strategy_isolation_across_runs(self):
        """Two consecutive runs through fresh middleware instances do
        not share state."""
        app = RFIDAnomaliesApp()
        contexts = app.generate_workload(0.2, seed=31, items=4)
        results = []
        for _ in range(2):
            m = run_group(
                app,
                make_strategy("drop-bad"),
                contexts,
                err_rate=0.2,
                seed=31,
                use_window=20,
            )
            results.append(m)
        assert results[0] == results[1]


class TestCrossStrategyInvariants:
    @pytest.mark.parametrize(
        "name",
        ["opt-r", "drop-bad", "drop-latest", "drop-all", "drop-random",
         "user-specified"],
    )
    def test_every_strategy_completes_cleanly(self, name):
        app = CallForwardingApp()
        contexts = app.generate_workload(0.3, seed=41, duration=120.0)
        m = run_group(
            app,
            make_strategy(name),
            contexts,
            err_rate=0.3,
            seed=41,
            use_window=10,
        )
        assert m.contexts_used + m.contexts_discarded <= m.contexts_total
        assert 0.0 <= m.removal_precision <= 1.0
        assert 0.0 <= m.survival_rate <= 1.0

    def test_oracle_dominates_on_expected_use(self):
        """OPT-R is the upper bound for expected-context delivery."""
        app = CallForwardingApp()
        contexts = app.generate_workload(0.3, seed=43, duration=200.0)
        used = {}
        for name in ("opt-r", "drop-bad", "drop-latest", "drop-all"):
            m = run_group(
                app,
                make_strategy(name),
                contexts,
                err_rate=0.3,
                seed=43,
                use_window=10,
            )
            used[name] = m.contexts_used_expected
        assert used["opt-r"] >= max(used.values())
