"""Property tests over the full middleware pipeline.

Hypothesis drives random location streams through every strategy and
checks the invariants that must hold regardless of workload:

* conservation: every added context is exactly one of
  delivered / discarded / expired / still-pending;
* the oracle never delivers corrupted or discards expected contexts
  and upper-bounds everyone's expected-context delivery;
* determinism: replaying a stream yields identical logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.middleware.manager import Middleware

STRATEGY_NAMES = ("opt-r", "drop-bad", "drop-latest", "drop-all")


def _checker():
    return ConstraintChecker(
        [
            parse_constraint(
                "velocity",
                "forall l1 in location, forall l2 in location : "
                "(same_subject(l1, l2) and before(l1, l2) "
                "and within_time(l1, l2, 1.5)) "
                "implies velocity_le(l1, l2, 1.5)",
            )
        ]
    )


@st.composite
def streams(draw):
    """A random single-subject location stream with ground truth."""
    length = draw(st.integers(min_value=1, max_value=14))
    contexts = []
    x = 0.0
    for index in range(length):
        corrupted = draw(st.booleans())
        if corrupted:
            # A jump that may or may not breach the velocity bound.
            offset = draw(
                st.floats(min_value=1.0, max_value=8.0, allow_nan=False)
            )
        else:
            offset = draw(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
            )
        position = (x + offset if corrupted else x, 0.0)
        if not corrupted:
            x += offset
        contexts.append(
            Context(
                ctx_id=f"s{index:02d}",
                ctx_type="location",
                subject="p",
                value=position,
                timestamp=float(index),
                corrupted=corrupted,
            )
        )
    window = draw(st.integers(min_value=0, max_value=6))
    return contexts, window


def _run(name, contexts, window):
    middleware = Middleware(
        _checker(), make_strategy(name), use_window=window
    )
    middleware.receive_all(contexts)
    return middleware


@settings(max_examples=120, deadline=None)
@given(streams())
def test_conservation_and_terminality(data):
    contexts, window = data
    for name in STRATEGY_NAMES:
        middleware = _run(name, contexts, window)
        log = middleware.resolution.log
        delivered = {c.ctx_id for c in log.delivered}
        discarded = {c.ctx_id for c in log.discarded}
        # No context is both delivered and discarded... except a
        # baseline revoking an already-delivered context; delivery
        # then discard is allowed, but never the other way round.
        if name in ("drop-bad", "opt-r"):
            assert not (delivered & discarded), name
        # Every context is accounted for.
        for ctx in contexts:
            assert (
                ctx.ctx_id in delivered
                or ctx.ctx_id in discarded
                or ctx in middleware.pool
            ), (name, ctx.ctx_id)


@settings(max_examples=80, deadline=None)
@given(streams())
def test_oracle_bounds_expected_delivery(data):
    contexts, window = data
    oracle = _run("opt-r", contexts, window).resolution.log
    oracle_expected = sum(1 for c in oracle.delivered if not c.corrupted)
    assert all(not c.corrupted for c in oracle.delivered)
    assert all(c.corrupted for c in oracle.discarded)
    for name in ("drop-bad", "drop-latest", "drop-all"):
        log = _run(name, contexts, window).resolution.log
        mine = sum(1 for c in log.delivered if not c.corrupted)
        assert mine <= oracle_expected, name


@settings(max_examples=40, deadline=None)
@given(streams())
def test_replay_determinism(data):
    contexts, window = data
    for name in STRATEGY_NAMES:
        first = _run(name, contexts, window).resolution.log
        second = _run(name, contexts, window).resolution.log
        assert [c.ctx_id for c in first.delivered] == [
            c.ctx_id for c in second.delivered
        ]
        assert [c.ctx_id for c in first.discarded] == [
            c.ctx_id for c in second.discarded
        ]
