"""Replay acceptance matrix: ledger + ruleset => byte-identical decisions.

For each application stream, each recording host (middleware plug-in;
engine inline / local / process) and both kernel settings, the written
ledger must verify and replay to the exact recorded
``decision_signature`` -- using nothing but the file.
"""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.core.strategy import make_strategy
from repro.engine import EngineConfig, ShardedEngine
from repro.ledger import (
    LedgerService,
    read_ledger,
    replay_ledger,
    verify_ledger,
)
from repro.middleware.manager import Middleware

from tests.runtime import _streams

APP_KEYS = tuple(case[0] for case in _streams.APP_CASES)

ENGINE_RUNS = [
    (mode, kernels)
    for mode in ("inline", "local", "process")
    for kernels in (True, False)
]


def record_engine(app_key, path, *, mode, kernels):
    constraints, registry_factory, stream, strategy, use_window = (
        _streams.app_inputs(app_key)
    )
    engine = ShardedEngine(
        constraints,
        strategy=strategy,
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=_streams.APP_SHARDS,
            mode=mode,
            use_window=use_window,
            kernels=kernels,
            ledger_path=str(path),
        ),
    )
    return engine.run(stream)


def record_middleware(app_key, path):
    constraints, registry_factory, stream, strategy, use_window = (
        _streams.app_inputs(app_key)
    )
    middleware = Middleware(
        ConstraintChecker(constraints, registry=registry_factory()),
        make_strategy(strategy),
        use_window=use_window,
    )
    middleware.plug_in(LedgerService(str(path), registry_factory=registry_factory))
    middleware.receive_all(stream)
    middleware.unplug("ledger")


class TestEngineReplayMatrix:
    @pytest.mark.parametrize("app_key", APP_KEYS)
    @pytest.mark.parametrize("mode,kernels", ENGINE_RUNS)
    def test_replay_is_byte_identical(self, app_key, mode, kernels, tmp_path):
        path = tmp_path / "run.jsonl"
        result = record_engine(app_key, path, mode=mode, kernels=kernels)
        check = verify_ledger(str(path))
        assert check.ok, check.summary()
        replay = replay_ledger(str(path))
        assert replay.ok, replay.summary()
        assert replay.recorded == result.decision_signature()
        assert replay.replayed == result.decision_signature()


class TestMiddlewareReplay:
    @pytest.mark.parametrize("app_key", APP_KEYS)
    def test_replay_is_byte_identical(self, app_key, tmp_path):
        path = tmp_path / "run.jsonl"
        record_middleware(app_key, path)
        replay = replay_ledger(str(path))
        assert replay.ok, replay.summary()


class TestReplaySafety:
    def test_refuses_a_tampered_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_engine("rfid", path, mode="inline", kernels=True)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"kind"', '"kinD"', 1)
        path.write_text("".join(line + "\n" for line in lines))
        replay = replay_ledger(str(path))
        assert not replay.ok
        assert "refusing" in replay.detail

    def test_shard_count_is_outcome_neutral(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_engine("rfid", path, mode="inline", kernels=True)
        for shards in (1, 2, 5):
            replay = replay_ledger(str(path), shards=shards)
            assert replay.ok, (shards, replay.summary())

    def test_registry_fallback_for_unresolvable_spec(self, tmp_path):
        # A closure factory cannot be recorded as a spec; replay must
        # then demand an explicit registry rather than guess.
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs("rfid")
        )

        def local_factory():
            return registry_factory()

        path = tmp_path / "run.jsonl"
        engine = ShardedEngine(
            constraints,
            strategy=strategy,
            registry_factory=local_factory,
            config=EngineConfig(
                shards=1, use_window=use_window, ledger_path=str(path)
            ),
        )
        engine.run(stream)
        entries = read_ledger(str(path))
        assert entries[0]["ruleset"]["registry"] is None
        failed = replay_ledger(str(path))
        assert not failed.ok and "registry" in failed.detail
        replay = replay_ledger(str(path), registry_factory=registry_factory)
        assert replay.ok, replay.summary()
