"""Writer + verification: the tamper-evidence contract.

A written ledger must verify; any edit, drop, reorder or header
forgery must be detected from the file alone.  An honest *prefix*
(tail truncation, e.g. a crashed live recorder) still verifies -- the
chain proves what it covers, not that the run finished.
"""

import json

import pytest

from repro.ledger import (
    LedgerWriter,
    read_ledger,
    ruleset_document,
    verify_ledger,
)
from repro.obs import Telemetry


def small_ruleset():
    return ruleset_document([], strategy="drop-latest", use_window=2)


def write_sample(path, n=5, **kwargs):
    with LedgerWriter(path, small_ruleset(), **kwargs) as writer:
        for i in range(n):
            writer.append(
                {"at": float(i), "kind": "admit", "shard": 0, "ctx_id": f"c{i}"}
            )
    return path


class TestWriter:
    def test_written_ledger_verifies(self, tmp_path):
        path = write_sample(tmp_path / "run.jsonl")
        result = verify_ledger(str(path))
        assert result.ok, result.summary()
        assert result.entries == 6  # header + 5

    def test_header_carries_ruleset_and_meta(self, tmp_path):
        path = write_sample(tmp_path / "run.jsonl", meta={"host": "test"})
        header = read_ledger(str(path))[0]
        assert header["kind"] == "ruleset"
        assert header["meta"] == {"host": "test"}
        assert header["ruleset"]["strategy"] == "drop-latest"
        assert header["seq"] == 0

    def test_append_after_close_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = LedgerWriter(path, small_ruleset())
        writer.close()
        writer.close()  # idempotent
        with pytest.raises(ValueError):
            writer.append({"at": 0.0, "kind": "admit", "shard": 0, "ctx_id": "c"})

    def test_fsync_mode_writes_identical_content(self, tmp_path):
        plain = write_sample(tmp_path / "plain.jsonl")
        synced = write_sample(tmp_path / "synced.jsonl", fsync=True)
        assert plain.read_text() == synced.read_text()

    def test_buffering_only_hits_disk_on_flush(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = LedgerWriter(path, small_ruleset(), buffer_entries=1000)
        writer.append({"at": 0.0, "kind": "admit", "shard": 0, "ctx_id": "c"})
        assert path.read_text() == ""
        writer.flush()
        assert len(path.read_text().splitlines()) == 2
        writer.close()

    def test_telemetry_counters(self, tmp_path):
        telemetry = Telemetry(enabled=True)
        write_sample(tmp_path / "run.jsonl", n=3, telemetry=telemetry)
        registry = telemetry.registry
        assert registry.value("ledger_entries_total", {"kind": "ruleset"}) == 1
        assert registry.value("ledger_entries_total", {"kind": "admit"}) == 3
        assert registry.value("ledger_bytes_total") > 0
        assert registry.value("ledger_flushes_total") >= 1


def rewrite(path, lines):
    path.write_text("".join(line + "\n" for line in lines), encoding="utf-8")


class TestTamperEvidence:
    @pytest.fixture
    def ledger(self, tmp_path):
        path = write_sample(tmp_path / "run.jsonl")
        return path, path.read_text().splitlines()

    def test_edited_value_breaks_the_chain(self, ledger):
        path, lines = ledger
        lines[2] = lines[2].replace('"ctx_id":"c1"', '"ctx_id":"c9"')
        rewrite(path, lines)
        result = verify_ledger(str(path))
        assert not result.ok
        assert "entry 2" in result.summary()

    def test_dropped_entry_is_detected(self, ledger):
        path, lines = ledger
        del lines[3]
        rewrite(path, lines)
        assert not verify_ledger(str(path)).ok

    def test_reordered_entries_are_detected(self, ledger):
        path, lines = ledger
        lines[2], lines[3] = lines[3], lines[2]
        rewrite(path, lines)
        assert not verify_ledger(str(path)).ok

    def test_forged_header_ruleset_is_detected(self, ledger):
        path, lines = ledger
        header = json.loads(lines[0])
        header["ruleset"]["strategy"] = "drop-all"
        # Keep the stored h intact: the forger edited the embedded
        # ruleset but cannot recompute the advertised ruleset_hash
        # without changing it (which downstream consumers pinned).
        lines[0] = json.dumps(header, sort_keys=True, separators=(",", ":"))
        rewrite(path, lines)
        assert not verify_ledger(str(path)).ok

    def test_truncated_tail_is_an_honest_prefix(self, ledger):
        path, lines = ledger
        rewrite(path, lines[:3])
        result = verify_ledger(str(path))
        assert result.ok
        assert result.entries == 3

    def test_empty_file_fails(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        result = verify_ledger(str(path))
        assert not result.ok
        assert "empty" in result.summary()
