"""Audit readers: explain (causal story) and diff (run comparison)."""

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.ledger import (
    diff_ledgers,
    explain_context,
    format_diff,
    read_ledger,
)

from tests.runtime import _streams


def record(tmp_path, name, *, strategy=None, kernels=True):
    constraints, registry_factory, stream, base_strategy, use_window = (
        _streams.app_inputs("rfid")
    )
    path = tmp_path / f"{name}.jsonl"
    engine = ShardedEngine(
        constraints,
        strategy=strategy or base_strategy,
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=2,
            use_window=use_window,
            kernels=kernels,
            ledger_path=str(path),
        ),
    )
    engine.run(stream)
    return read_ledger(str(path))


@pytest.fixture(scope="module")
def entries(tmp_path_factory):
    return record(tmp_path_factory.mktemp("ledger"), "base")


class TestExplain:
    def test_discarded_context_story_names_the_constraints(self, entries):
        discard = next(e for e in entries if e["kind"] == "discard" and e["why"])
        story = explain_context(entries, discard["ctx_id"])
        assert discard["ctx_id"] in story
        assert "arrived" in story
        assert "implicated by constraint" in story
        assert "DISCARDED" in story
        for constraint in discard["why"]:
            assert constraint in story

    def test_delivered_context_story(self, entries):
        deliver = next(e for e in entries if e["kind"] == "deliver")
        story = explain_context(entries, deliver["ctx_id"])
        assert "DELIVERED" in story

    def test_unknown_context(self, entries):
        assert "no record" in explain_context(entries, "nope-404")


class TestDiff:
    def test_identical_runs(self, entries, tmp_path):
        other = record(tmp_path, "again")
        diff = diff_ledgers(entries, other)
        assert diff["same_ruleset"] and diff["identical"]
        assert diff["first_divergence"] is None
        assert diff["changed_verdicts"] == {}
        assert "identical" in format_diff(diff)

    def test_kernels_off_run_is_diffably_identical(self, entries, tmp_path):
        # The ruleset hash excludes execution knobs exactly so this
        # comparison is meaningful.
        other = record(tmp_path, "nokernels", kernels=False)
        diff = diff_ledgers(entries, other)
        assert diff["same_ruleset"] and diff["identical"]

    def test_different_strategy_diverges(self, entries, tmp_path):
        other = record(tmp_path, "latest", strategy="drop-latest")
        diff = diff_ledgers(entries, other)
        assert not diff["same_ruleset"]
        assert not diff["identical"]
        assert diff["first_divergence"] is not None
        assert diff["changed_verdicts"]
        text = format_diff(diff, label_a="bad", label_b="latest")
        assert "DIFFERENT" in text and "DIVERGENT" in text
