"""Event recording and deterministic segment merging.

Every host publishes the same lifecycle vocabulary, so the recorder
must produce equivalent ledgers wherever it listens: the middleware's
plug-in, the inline engine's post-hoc conversion, and the per-shard
segments of local/process runs merged back into global order.
"""

import pytest

from repro.constraints.checker import ConstraintChecker
from repro.core.strategy import make_strategy
from repro.engine import EngineConfig, ShardedEngine
from repro.ledger import (
    LedgerRecorder,
    LedgerService,
    diff_ledgers,
    entries_from_events,
    ledger_signature,
    merge_segments,
    read_ledger,
    verify_ledger,
)
from repro.middleware.manager import Middleware

from tests.runtime import _streams

APP = "rfid"


@pytest.fixture(scope="module")
def app_case():
    return _streams.app_inputs(APP)


def engine_ledger(app_case, tmp_path, *, mode, shards=_streams.APP_SHARDS):
    constraints, registry_factory, stream, strategy, use_window = app_case
    path = tmp_path / f"{mode}.jsonl"
    engine = ShardedEngine(
        constraints,
        strategy=strategy,
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=shards,
            mode=mode,
            use_window=use_window,
            ledger_path=str(path),
        ),
    )
    result = engine.run(stream)
    return read_ledger(str(path)), result


def middleware_ledger(app_case, tmp_path):
    constraints, registry_factory, stream, strategy, use_window = app_case
    path = tmp_path / "middleware.jsonl"
    middleware = Middleware(
        ConstraintChecker(constraints, registry=registry_factory()),
        make_strategy(strategy),
        use_window=use_window,
    )
    service = LedgerService(str(path), registry_factory=registry_factory)
    middleware.plug_in(service)
    middleware.receive_all(stream)
    middleware.unplug("ledger")
    return read_ledger(str(path))


class TestHostEquivalence:
    def test_middleware_and_engine_record_identical_decisions(
        self, app_case, tmp_path
    ):
        mw_entries = middleware_ledger(app_case, tmp_path)
        for mode in ("inline", "local", "process"):
            entries, result = engine_ledger(app_case, tmp_path, mode=mode)
            assert verify_ledger(entries).ok
            diff = diff_ledgers(mw_entries, entries)
            assert diff["same_ruleset"], mode
            assert diff["identical"], (mode, diff)
            # The ledger signature IS the run's decision signature.
            assert ledger_signature(entries) == result.decision_signature()

    def test_every_host_emits_one_entry_per_lifecycle_event(
        self, app_case, tmp_path
    ):
        stream = app_case[2]
        entries, result = engine_ledger(app_case, tmp_path, mode="inline")
        arrivals = [e for e in entries if e["kind"] == "arrival"]
        assert len(arrivals) == len(stream)
        terminal = [
            e for e in entries if e["kind"] in ("deliver", "discard", "expire")
        ]
        assert len(terminal) == len(stream)
        assert len({e["ctx_id"] for e in terminal}) == len(stream)


class TestShardAttribution:
    def test_local_segments_merge_to_inline_order(self, app_case, tmp_path):
        inline, _ = engine_ledger(app_case, tmp_path, mode="inline")
        local, _ = engine_ledger(app_case, tmp_path, mode="local")
        # Same decision stream AND same shard attribution per context:
        # the inline recorder asks the router, the local path pins each
        # worker's own shard id -- they must agree.
        def key(entries):
            return [
                (e["kind"], e.get("ctx_id"), e["shard"])
                for e in entries[1:]
                if e["kind"] in ("arrival", "deliver", "discard")
            ]

        assert key(inline) == key(local)

    def test_merge_segments_is_the_event_merge_order(self):
        segments = [
            [
                {"at": 1.0, "shard": 0, "kind": "admit", "ctx_id": "a"},
                {"at": 3.0, "shard": 0, "kind": "deliver", "ctx_id": "a"},
            ],
            [
                {"at": 1.0, "shard": 1, "kind": "admit", "ctx_id": "b"},
                {"at": 2.0, "shard": 1, "kind": "deliver", "ctx_id": "b"},
            ],
        ]
        merged = merge_segments(segments)
        assert [(e["at"], e["shard"]) for e in merged] == [
            (1.0, 0),
            (1.0, 1),
            (2.0, 1),
            (3.0, 0),
        ]


class TestRecorderApi:
    def test_entries_from_events_rejects_both_shard_args(self):
        with pytest.raises(ValueError):
            entries_from_events([], shard_id=0, shard_of=lambda ctx: 0)

    def test_attach_twice_raises(self):
        from repro.middleware.bus import EventBus

        recorder = LedgerRecorder(lambda entry: None)
        bus = EventBus()
        recorder.attach(bus)
        with pytest.raises(ValueError):
            recorder.attach(EventBus())
        recorder.detach()
        recorder.detach()  # idempotent
        recorder.attach(bus)  # reattachable after detach
        recorder.detach()

    def test_discard_why_names_the_implicating_constraints(
        self, app_case, tmp_path
    ):
        entries, _ = engine_ledger(app_case, tmp_path, mode="inline")
        constraint_names = {
            c["name"] for c in entries[0]["ruleset"]["constraints"]
        }
        discards = [e for e in entries if e["kind"] == "discard"]
        assert discards
        explained = [e for e in discards if e["why"]]
        assert explained, "no discard carries a why"
        for entry in explained:
            assert set(entry["why"]) <= constraint_names
