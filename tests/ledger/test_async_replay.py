"""Ledger round-trip for asynchronous checking mode.

PR 7's replay contract extends to the async-check ingress: a run over
a perturbed stream (delayed + duplicated) records ``stale`` and
``duplicate`` refusal kinds, the ruleset header carries the
``async_check`` configuration, and replaying the file reproduces the
recorded decision signature byte for byte.  Sync-mode ledgers must not
gain an ``async_check`` key -- their ruleset hashes are pinned by
PR 7-era files and by the goldens.
"""

import random

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.ledger import read_ledger, replay_ledger, verify_ledger
from repro.ledger.reader import explain_context
from repro.runtime import AsyncCheckConfig
from repro.sensing.perturb import delay_stream, duplicate_stream

from tests.runtime import _streams

pytestmark = pytest.mark.async_check


def perturbed_inputs(app_key="rfid", seed=90):
    constraints, registry_factory, stream, strategy, use_window = (
        _streams.app_inputs(app_key)
    )
    rng = random.Random(seed)
    perturbed = duplicate_stream(
        delay_stream(stream, rng, max_delay=3.0), rng, p=0.2
    )
    return constraints, registry_factory, perturbed, strategy, use_window


def record_async_run(path, *, max_lag=8.0):
    constraints, registry_factory, stream, strategy, use_window = (
        perturbed_inputs()
    )
    engine = ShardedEngine(
        constraints,
        strategy=strategy,
        registry_factory=registry_factory,
        config=EngineConfig(
            shards=_streams.APP_SHARDS,
            mode="inline",
            use_window=use_window,
            async_check=AsyncCheckConfig(max_lag=max_lag),
            ledger_path=str(path),
        ),
    )
    return engine.run(stream)


class TestAsyncReplay:
    def test_replay_is_byte_identical(self, tmp_path):
        path = tmp_path / "run.jsonl"
        result = record_async_run(path)
        check = verify_ledger(str(path))
        assert check.ok, check.summary()
        replay = replay_ledger(str(path))
        assert replay.ok, replay.summary()
        assert replay.recorded == result.decision_signature()
        assert replay.replayed == result.decision_signature()

    def test_refusal_kinds_are_recorded(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_async_run(path)
        kinds = {entry.get("kind") for entry in read_ledger(str(path))}
        # The duplicated stream guarantees duplicate refusals; delayed
        # arrivals behind the cursor may or may not occur, so only the
        # duplicate kind is a hard assertion.
        assert "duplicate" in kinds

    def test_ruleset_header_carries_async_config(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_async_run(path, max_lag=8.0)
        header = read_ledger(str(path))[0]
        document = header["ruleset"]["async_check"]
        assert AsyncCheckConfig.from_document(document) == AsyncCheckConfig(
            max_lag=8.0
        )

    def test_sync_ruleset_omits_async_key(self, tmp_path):
        """Hash stability with PR 7: sync-mode headers are unchanged."""
        constraints, registry_factory, stream, strategy, use_window = (
            _streams.app_inputs("rfid")
        )
        path = tmp_path / "sync.jsonl"
        ShardedEngine(
            constraints,
            strategy=strategy,
            registry_factory=registry_factory,
            config=EngineConfig(
                shards=_streams.APP_SHARDS,
                mode="inline",
                use_window=use_window,
                ledger_path=str(path),
            ),
        ).run(stream)
        header = read_ledger(str(path))[0]
        assert "async_check" not in header["ruleset"]

    def test_explain_narrates_duplicate_refusal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        record_async_run(path)
        entries = read_ledger(str(path))
        dup = next(e for e in entries if e.get("kind") == "duplicate")
        story = explain_context(entries, dup["ctx_id"])
        assert "REFUSED by the async-check ingress" in story
        assert "duplicate delivery" in story
