"""Decision-ledger suite: hashing, recording, verification, replay."""
