"""Hash primitives and ruleset identity.

The chain and the ruleset hash are the ledger's integrity foundation:
canonical JSON must be byte-stable under dict ordering, and the
ruleset hash must track exactly the decision-relevant configuration --
change a constraint and it changes; flip kernels and it must NOT.
"""

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.ledger import (
    GENESIS,
    canonical_json,
    chain_hash,
    ruleset_document,
    ruleset_hash,
)

from tests.runtime import _streams


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestChainHash:
    def test_deterministic(self):
        entry = {"kind": "arrival", "seq": 1}
        assert chain_hash(GENESIS, entry) == chain_hash(GENESIS, dict(entry))

    def test_sensitive_to_prev(self):
        entry = {"kind": "arrival", "seq": 1}
        other = chain_hash(GENESIS, {"kind": "ruleset", "seq": 0})
        assert chain_hash(GENESIS, entry) != chain_hash(other, entry)

    def test_sensitive_to_entry(self):
        assert chain_hash(GENESIS, {"seq": 1}) != chain_hash(GENESIS, {"seq": 2})


def app_engine(app_key="rfid", *, constraints=None, strategy=None, **config):
    base_constraints, registry_factory, _, base_strategy, use_window = (
        _streams.app_inputs(app_key)
    )
    config.setdefault("use_window", use_window)
    return ShardedEngine(
        constraints if constraints is not None else base_constraints,
        strategy=strategy or base_strategy,
        registry_factory=registry_factory,
        config=EngineConfig(shards=2, **config),
    )


class TestRulesetHash:
    def test_stable_across_engine_constructions(self):
        assert app_engine().ruleset_hash == app_engine().ruleset_hash

    def test_changes_when_a_constraint_is_added(self):
        constraints, _, _, _, _ = _streams.app_inputs("rfid")
        rng = __import__("random").Random(3)
        extra = _streams.make_constraints(rng)[0]
        grown = app_engine(constraints=list(constraints) + [extra])
        assert grown.ruleset_hash != app_engine().ruleset_hash

    def test_changes_with_strategy(self):
        assert (
            app_engine(strategy="drop-latest").ruleset_hash
            != app_engine(strategy="drop-bad").ruleset_hash
        )

    def test_changes_with_window(self):
        a = app_engine()
        b = app_engine(use_window=a.config.use_window + 1)
        assert a.ruleset_hash != b.ruleset_hash

    def test_kernels_and_mode_and_shards_are_hash_neutral(self):
        # Execution knobs never change decisions, so two runs that
        # differ only in them must share an identity -- that is what
        # makes their ledgers diffable.
        base = app_engine()
        assert app_engine(kernels=False).ruleset_hash == base.ruleset_hash
        assert app_engine(mode="local").ruleset_hash == base.ruleset_hash
        assert base.ruleset_hash == app_engine().ruleset_hash

    def test_constraint_order_insensitive(self):
        constraints, _, _, _, _ = _streams.app_inputs("rfid")
        doc_a = ruleset_document(list(constraints), strategy="drop-bad")
        doc_b = ruleset_document(
            list(reversed(list(constraints))), strategy="drop-bad"
        )
        assert ruleset_hash(doc_a) == ruleset_hash(doc_b)
