"""The ``repro ledger`` CLI family and the ``--ledger`` run flags."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "run.jsonl"
    code, text = run_cli(
        "engine", "run", "rfid", "--shards", "2", "--ledger", str(path)
    )
    assert code == 0
    return path, text


class TestLedgerParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ledger"])

    def test_explain_requires_ctx_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ledger", "explain", "x.jsonl"])


class TestEngineRunLedgerFlag:
    def test_announces_the_ledger_and_ruleset(self, recorded):
        path, text = recorded
        assert path.exists()
        assert "decision ledger written to" in text
        assert "ruleset " in text

    def test_serve_parser_accepts_ledger(self):
        args = build_parser().parse_args(
            ["serve", "rfid", "--ledger", "x.jsonl"]
        )
        assert args.ledger == "x.jsonl"


class TestLedgerCommands:
    def test_verify_ok(self, recorded):
        path, _ = recorded
        code, text = run_cli("ledger", "verify", str(path))
        assert code == 0
        assert text.startswith("OK:")

    def test_verify_tampered_exits_nonzero(self, recorded, tmp_path):
        path, _ = recorded
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"at":', '"At":', 1)
        bad = tmp_path / "bad.jsonl"
        bad.write_text("".join(line + "\n" for line in lines))
        code, text = run_cli("ledger", "verify", str(bad))
        assert code == 1
        assert "FAILED" in text

    def test_verify_missing_file_exits_2(self, tmp_path):
        code, _ = run_cli("ledger", "verify", str(tmp_path / "nope.jsonl"))
        assert code == 2

    def test_explain(self, recorded):
        import json

        path, _ = recorded
        entries = [json.loads(line) for line in path.read_text().splitlines()]
        discard = next(e for e in entries if e.get("kind") == "discard")
        code, text = run_cli("ledger", "explain", str(path), discard["ctx_id"])
        assert code == 0
        assert "DISCARDED" in text

    def test_replay(self, recorded):
        path, _ = recorded
        code, text = run_cli("ledger", "replay", str(path))
        assert code == 0
        assert "byte-identical" in text

    def test_replay_with_app_fallback(self, recorded):
        path, _ = recorded
        code, text = run_cli(
            "ledger", "replay", str(path), "--app", "rfid", "--shards", "1"
        )
        assert code == 0

    def test_diff_identical_and_divergent(self, recorded, tmp_path):
        path, _ = recorded
        same = tmp_path / "same.jsonl"
        code, _ = run_cli(
            "engine", "run", "rfid", "--shards", "4", "--mode", "local",
            "--ledger", str(same),
        )
        assert code == 0
        code, text = run_cli("ledger", "diff", str(path), str(same))
        assert code == 0
        assert "identical" in text

        other = tmp_path / "other.jsonl"
        code, _ = run_cli(
            "engine", "run", "rfid", "--shards", "2",
            "--strategy", "drop-latest", "--ledger", str(other),
        )
        assert code == 0
        code, text = run_cli("ledger", "diff", str(path), str(other))
        assert code == 1
        assert "DIVERGENT" in text
