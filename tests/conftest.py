"""Shared test fixtures and helpers."""

from __future__ import annotations

import itertools

import pytest

from repro.core.context import Context


_COUNTER = itertools.count(1)


def make_context(
    ctx_id=None,
    ctx_type="location",
    subject="peter",
    value=(0.0, 0.0),
    timestamp=0.0,
    lifespan=float("inf"),
    source="test",
    corrupted=False,
    attributes=(),
):
    """A context with sensible defaults for unit tests."""
    if ctx_id is None:
        ctx_id = f"t-{next(_COUNTER)}"
    return Context(
        ctx_id=ctx_id,
        ctx_type=ctx_type,
        subject=subject,
        value=value,
        timestamp=timestamp,
        lifespan=lifespan,
        source=source,
        corrupted=corrupted,
        attributes=attributes,
    )


@pytest.fixture
def mk():
    """Factory fixture: ``mk(ctx_id=..., ...)`` builds test contexts."""
    return make_context
