"""Unit tests for the environment model."""

import random

import pytest

from repro.sensing.environment import FloorPlan, Room, office_floor, warehouse_floor


class TestRoom:
    def test_geometry(self):
        room = Room("r", 0.0, 0.0, 10.0, 4.0)
        assert room.center == (5.0, 2.0)
        assert room.width == 10.0
        assert room.height == 4.0

    def test_contains(self):
        room = Room("r", 0.0, 0.0, 10.0, 4.0)
        assert room.contains((5.0, 2.0))
        assert room.contains((0.0, 0.0))  # boundary inclusive
        assert not room.contains((10.1, 2.0))

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Room("bad", 0.0, 0.0, 0.0, 4.0)

    def test_random_point_inside(self):
        room = Room("r", 2.0, 3.0, 8.0, 9.0)
        rng = random.Random(1)
        for _ in range(50):
            assert room.contains(room.random_point(rng))


class TestFloorPlan:
    def test_duplicate_room_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FloorPlan([Room("a", 0, 0, 1, 1), Room("a", 1, 0, 2, 1)])

    def test_door_to_unknown_room_rejected(self):
        with pytest.raises(ValueError, match="unknown room"):
            FloorPlan([Room("a", 0, 0, 1, 1)], doors=[("a", "ghost")])

    def test_room_lookup(self):
        floor = office_floor()
        assert floor.room("corridor").kind == "corridor"
        assert floor.room_at((5.0, 4.0)).name == "office-1"
        assert floor.room_at((-5.0, -5.0)) is None

    def test_routing_goes_through_corridor(self):
        floor = office_floor()
        route = floor.route("office-1", "meeting")
        assert route == ["office-1", "corridor", "meeting"]

    def test_neighbors_and_connectivity(self):
        floor = office_floor()
        assert "corridor" in floor.neighbors("office-1")
        assert floor.are_connected("office-1", "lounge")

    def test_bounds_cover_all_rooms(self):
        x0, y0, x1, y1 = office_floor().bounds()
        assert (x0, y0) == (0.0, 0.0)
        assert (x1, y1) == (40.0, 20.0)

    def test_feasible_rooms_by_kind(self):
        floor = office_floor()
        offices = floor.feasible_rooms(["office"])
        assert offices == {"office-1", "office-2", "office-3", "office-4"}

    def test_rooms_of_kind(self):
        floor = warehouse_floor()
        shelves = [r.name for r in floor.rooms_of_kind("shelf")]
        assert shelves == ["shelf-A", "shelf-B", "shelf-C", "shelf-D"]


class TestDoorPoints:
    def test_door_point_on_shared_face(self):
        floor = office_floor()
        x, y = floor.door_point("office-1", "corridor")
        # office-1 spans x 0-10; the corridor starts at y=8; the point
        # is pushed 0.5 into the corridor.
        assert 0.0 <= x <= 10.0
        assert y == pytest.approx(8.5)

    def test_inset_direction_follows_target(self):
        floor = office_floor()
        into_corridor = floor.door_point("office-1", "corridor")
        into_office = floor.door_point("corridor", "office-1")
        assert into_corridor[1] > 8.0
        assert into_office[1] < 8.0

    def test_door_point_lands_in_target_room(self):
        floor = office_floor()
        for a, b in floor.graph.edges:
            assert floor.room(b).contains(floor.door_point(a, b))
            assert floor.room(a).contains(floor.door_point(b, a))

    def test_vertical_face(self):
        floor = warehouse_floor()
        x, y = floor.door_point("dock", "staging")
        # dock/staging share the vertical face x=10.
        assert x == pytest.approx(10.5)
        assert 0.0 <= y <= 10.0

    def test_unconnected_rooms_rejected(self):
        floor = office_floor()
        with pytest.raises(ValueError, match="not connected"):
            floor.door_point("office-1", "office-2")


class TestStandardFloors:
    def test_office_floor_tiles_fully(self):
        """Every in-bounds point is inside some room (used by the
        feasible-area constraint)."""
        floor = office_floor()
        rng = random.Random(0)
        x0, y0, x1, y1 = floor.bounds()
        for _ in range(200):
            point = (rng.uniform(x0, x1), rng.uniform(y0, y1))
            assert floor.room_at(point) is not None

    def test_warehouse_flow_connectivity(self):
        floor = warehouse_floor()
        assert floor.are_connected("dock", "checkout")
        # Flow path exists through shelves.
        route = floor.route("dock", "checkout")
        assert route[0] == "dock" and route[-1] == "checkout"
