"""Property tests for the stream perturbation adapters.

The adapters' contract is conservation: perturbation moves contexts
around (or copies them) but never invents, loses, or edits payloads.
That is what makes the asynchrony experiments meaningful -- a quality
drop under perturbation is attributable to *ordering*, not to a lossy
adapter.  Hypothesis pins:

* ``delay_stream`` / ``reorder_stream`` are permutations of the exact
  input objects (same multiset, same identities);
* ``duplicate_stream`` only appends copies strictly after their
  originals, and ``dedup_stream`` inverts it byte-for-byte;
* ``skew_stream`` rewrites timestamps by one constant per source and
  touches nothing else;
* running the runtime (async check off) over a dedup'd duplicated
  stream reproduces the golden decision signature of the original.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import Context
from repro.sensing.perturb import (
    dedup_stream,
    delay_stream,
    duplicate_stream,
    reorder_stream,
    skew_stream,
)

pytestmark = pytest.mark.async_check


def make_stream(timestamps, n_sources=3):
    return [
        Context(
            ctx_id=f"c{i}",
            ctx_type="loc",
            subject=f"s{i % n_sources}",
            value=float(i),
            timestamp=ts,
            lifespan=float("inf"),
        )
        for i, ts in enumerate(timestamps)
    ]


timestamps_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    max_size=40,
)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestPermutationAdapters:
    @given(timestamps=timestamps_strategy, seed=seeds,
           max_delay=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_delay_is_a_permutation(self, timestamps, seed, max_delay):
        stream = make_stream(timestamps)
        out = delay_stream(stream, random.Random(seed), max_delay=max_delay)
        assert sorted(map(id, out)) == sorted(map(id, stream))

    @given(timestamps=timestamps_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_zero_delay_is_the_identity_on_sorted_streams(
        self, timestamps, seed
    ):
        # Workload generators emit timestamp-sorted streams; with no
        # delay the arrival order IS the production order.
        stream = make_stream(sorted(timestamps))
        assert delay_stream(
            stream, random.Random(seed), max_delay=0.0
        ) == stream

    @given(timestamps=timestamps_strategy, seed=seeds,
           window=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_reorder_is_a_bounded_permutation(self, timestamps, seed, window):
        stream = make_stream(timestamps)
        out = reorder_stream(stream, random.Random(seed), window=window)
        assert sorted(map(id, out)) == sorted(map(id, stream))
        for new_pos, ctx in enumerate(out):
            old_pos = stream.index(ctx)
            assert abs(new_pos - old_pos) <= window

    @given(timestamps=timestamps_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_zero_window_is_the_identity(self, timestamps, seed):
        stream = make_stream(timestamps)
        assert reorder_stream(
            stream, random.Random(seed), window=0
        ) == stream


class TestDuplication:
    @given(timestamps=timestamps_strategy, seed=seeds,
           p=st.floats(min_value=0.0, max_value=1.0),
           max_gap=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_duplicates_arrive_strictly_after_originals(
        self, timestamps, seed, p, max_gap
    ):
        stream = make_stream(timestamps)
        out = duplicate_stream(
            stream, random.Random(seed), p=p, max_gap=max_gap
        )
        first_seen = {}
        for pos, ctx in enumerate(out):
            if ctx.ctx_id in first_seen:
                # A copy: the same object, strictly later.
                assert ctx is out[first_seen[ctx.ctx_id]]
            else:
                first_seen[ctx.ctx_id] = pos
        assert len(first_seen) == len(stream)

    @given(timestamps=timestamps_strategy, seed=seeds,
           p=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_dedup_inverts_duplicate(self, timestamps, seed, p):
        stream = make_stream(timestamps)
        duplicated = duplicate_stream(stream, random.Random(seed), p=p)
        assert dedup_stream(duplicated) == stream


class TestSkew:
    @given(timestamps=timestamps_strategy, seed=seeds,
           max_skew=st.floats(min_value=0.0, max_value=30.0))
    @settings(max_examples=60, deadline=None)
    def test_one_constant_offset_per_source(self, timestamps, seed, max_skew):
        stream = make_stream(timestamps)
        out = skew_stream(stream, random.Random(seed), max_skew=max_skew)
        assert [c.ctx_id for c in out] == [c.ctx_id for c in stream]
        offsets = {}
        for before, after in zip(stream, out):
            assert after.value == before.value
            assert after.lifespan == before.lifespan
            assert after.timestamp >= 0.0
            if after.timestamp > 0.0:  # not clamped: offset observable
                offset = after.timestamp - before.timestamp
                assert abs(offset) <= max_skew + 1e-9
                key = before.source
                assert abs(offsets.setdefault(key, offset) - offset) <= 1e-9


class TestGoldenSignatureThroughDedup:
    """dedup(duplicate(stream)) feeds the *unmodified* runtime (async
    check off) and must land on the recorded golden signature --
    duplication plus dedup is decision-invisible."""

    @pytest.mark.parametrize("seed", [2, 48, 160])
    def test_dedup_restores_golden_signature(self, seed):
        import json
        import pathlib

        from repro.constraints.checker import ConstraintChecker
        from repro.core.strategy import make_strategy
        from repro.middleware.bus import ContextDelivered, ContextDiscarded
        from repro.middleware.manager import Middleware

        from tests.runtime import _streams

        constraints, stream, params = _streams.trial_inputs(seed)
        perturbed = dedup_stream(
            duplicate_stream(stream, random.Random(seed ^ 0xD0D0), p=0.25)
        )
        assert perturbed == stream  # the dedup contract, concretely
        middleware = Middleware(
            ConstraintChecker(constraints),
            make_strategy(params["strategy"]),
            use_window=params["use_window"],
            use_delay=params["use_delay"],
        )
        delivered, discarded = [], []
        middleware.bus.subscribe(
            ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
        )
        middleware.bus.subscribe(
            ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
        )
        middleware.receive_all(perturbed)
        golden = json.loads(
            (
                pathlib.Path(__file__).parents[1]
                / "runtime"
                / "goldens"
                / "generated_streams.json"
            ).read_text()
        )
        assert (
            _streams.signature(delivered, discarded)
            == golden["trials"][seed]["signature"]
        )
