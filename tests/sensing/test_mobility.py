"""Unit tests for the mobility models."""

import math
import random

import pytest

from repro.sensing.environment import office_floor, warehouse_floor
from repro.sensing.mobility import (
    RandomWaypointWalker,
    ScriptedPath,
    TruePosition,
    ZoneFlowWalker,
)


class TestScriptedPath:
    def test_constant_speed_sampling(self):
        path = ScriptedPath("p", [(0.0, 0.0), (10.0, 0.0)], speed=1.0)
        samples = path.sample(period=1.0, count=5)
        assert [s.position[0] for s in samples] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert [s.timestamp for s in samples] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_polyline_corners(self):
        path = ScriptedPath("p", [(0, 0), (2, 0), (2, 2)], speed=2.0)
        samples = path.sample(period=1.0, count=3)
        assert samples[1].position == (2.0, 0.0)
        assert samples[2].position == (2.0, 2.0)

    def test_without_count_stops_at_end(self):
        path = ScriptedPath("p", [(0, 0), (3, 0)], speed=1.0)
        samples = path.sample(period=1.0)
        assert samples[-1].position == (3.0, 0.0)
        assert len(samples) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            ScriptedPath("p", [(0, 0)], speed=1.0)
        with pytest.raises(ValueError):
            ScriptedPath("p", [(0, 0), (1, 0)], speed=0.0)
        with pytest.raises(ValueError):
            ScriptedPath("p", [(0, 0), (1, 0)], speed=1.0).sample(period=0)

    def test_room_annotation(self):
        floor = office_floor()
        path = ScriptedPath(
            "p", [(5.0, 4.0), (5.0, 10.0)], speed=1.0, floor=floor
        )
        samples = path.sample(period=2.0, count=4)
        assert samples[0].room == "office-1"
        assert samples[-1].room == "corridor"


class TestRandomWaypointWalker:
    def test_samples_cover_duration(self):
        walker = RandomWaypointWalker(
            "p", office_floor(), random.Random(1), period=2.0
        )
        samples = walker.walk(duration=60.0)
        assert samples[0].timestamp == 0.0
        assert samples[-1].timestamp <= 60.0
        assert len(samples) >= 20

    def test_velocity_bounded_by_speed(self):
        """No ground-truth step exceeds the walking speed (what makes
        the 150% velocity constraint satisfiable by expected data)."""
        walker = RandomWaypointWalker(
            "p", office_floor(), random.Random(3), speed=1.2, period=2.0
        )
        samples = walker.walk(duration=120.0)
        for a, b in zip(samples, samples[1:]):
            dt = b.timestamp - a.timestamp
            dist = math.hypot(
                b.position[0] - a.position[0], b.position[1] - a.position[1]
            )
            assert dist <= 1.2 * dt * 1.25 + 1e-6

    def test_positions_inside_floor(self):
        floor = office_floor()
        walker = RandomWaypointWalker("p", floor, random.Random(7))
        for sample in walker.walk(duration=120.0):
            assert sample.room is not None

    def test_deterministic_given_seed(self):
        def run(seed):
            walker = RandomWaypointWalker(
                "p", office_floor(), random.Random(seed)
            )
            return [s.position for s in walker.walk(duration=30.0)]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWaypointWalker(
                "p", office_floor(), random.Random(0), speed=0.0
            )

    @pytest.mark.parametrize("seed", [0, 3, 17, 42])
    def test_no_hops_between_unconnected_rooms(self, seed):
        """Consecutive samples only ever cross door-connected rooms --
        the property that keeps the badge-transition constraint free
        of false alarms (regression: diagonal corridor traverses used
        to sag through adjacent offices)."""
        floor = office_floor()
        walker = RandomWaypointWalker(
            "p", floor, random.Random(seed), speed=1.2, period=2.0
        )
        samples = walker.walk(duration=240.0)
        for a, b in zip(samples, samples[1:]):
            if a.room and b.room and a.room != b.room:
                assert floor.graph.has_edge(a.room, b.room), (
                    a.room,
                    b.room,
                    a.position,
                    b.position,
                )


class TestZoneFlowWalker:
    def test_item_visits_flow_in_order(self):
        floor = warehouse_floor()
        walker = ZoneFlowWalker(
            "tag-1",
            floor,
            ["dock", "staging", "shelf-A", "checkout"],
            random.Random(5),
        )
        samples = walker.walk()
        rooms = [s.room for s in samples]
        # Dedup consecutive rooms: must equal the flow.
        dedup = [rooms[0]] + [
            r for prev, r in zip(rooms, rooms[1:]) if r != prev
        ]
        assert dedup == ["dock", "staging", "shelf-A", "checkout"]

    def test_timestamps_monotone(self):
        walker = ZoneFlowWalker(
            "tag-1",
            warehouse_floor(),
            ["dock", "staging"],
            random.Random(5),
            period=2.0,
        )
        samples = walker.walk(start_time=10.0)
        assert samples[0].timestamp == 10.0
        assert all(
            b.timestamp > a.timestamp for a, b in zip(samples, samples[1:])
        )

    def test_needs_two_zones(self):
        with pytest.raises(ValueError):
            ZoneFlowWalker("t", warehouse_floor(), ["dock"], random.Random(0))
