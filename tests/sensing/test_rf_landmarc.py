"""Unit tests for RF propagation and the LANDMARC estimator."""

import math
import random

import pytest

from repro.sensing.landmarc import (
    LandmarcEstimator,
    ReferenceTag,
    corner_readers,
    grid_reference_tags,
)
from repro.sensing.rf import PathLossModel, Reader, rssi_vector


class TestPathLossModel:
    def test_monotone_decay_with_distance(self):
        model = PathLossModel(shadow_sigma=0.0)
        near = model.rssi((1.0, 0.0), (0.0, 0.0))
        far = model.rssi((10.0, 0.0), (0.0, 0.0))
        assert near > far

    def test_reference_distance_clamps(self):
        model = PathLossModel(p0=-40.0, shadow_sigma=0.0, d0=1.0)
        assert model.rssi((0.0, 0.0), (0.0, 0.0)) == pytest.approx(-40.0)

    def test_shadowing_only_with_rng(self):
        model = PathLossModel(shadow_sigma=5.0)
        deterministic = model.rssi((5.0, 0.0), (0.0, 0.0))
        assert model.rssi((5.0, 0.0), (0.0, 0.0)) == deterministic
        noisy = model.rssi((5.0, 0.0), (0.0, 0.0), random.Random(1))
        assert noisy != deterministic

    def test_validation(self):
        with pytest.raises(ValueError):
            PathLossModel(d0=0.0)
        with pytest.raises(ValueError):
            PathLossModel(exponent=-1.0)

    def test_rssi_vector_order(self):
        readers = [Reader("a", (0.0, 0.0)), Reader("b", (10.0, 0.0))]
        model = PathLossModel(shadow_sigma=0.0)
        vector = rssi_vector((1.0, 0.0), readers, model)
        assert vector[0] > vector[1]  # closer to reader a


class TestGridAndReaders:
    def test_grid_coverage(self):
        tags = grid_reference_tags(0.0, 0.0, 8.0, 4.0, spacing=4.0)
        positions = {t.position for t in tags}
        assert (0.0, 0.0) in positions
        assert (8.0, 4.0) in positions
        assert len(tags) == 3 * 2  # 3 columns x 2 rows

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_reference_tags(0, 0, 1, 1, spacing=0)

    def test_corner_readers(self):
        readers = corner_readers(0.0, 0.0, 10.0, 20.0)
        assert len(readers) == 4
        assert {r.position for r in readers} == {
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 20.0),
            (10.0, 20.0),
        }


class TestLandmarcEstimator:
    def _estimator(self, k=4):
        return LandmarcEstimator(
            corner_readers(0.0, 0.0, 20.0, 20.0),
            grid_reference_tags(0.0, 0.0, 20.0, 20.0, spacing=4.0),
            PathLossModel(shadow_sigma=0.0),
            k=k,
        )

    def test_noiseless_estimation_is_accurate(self):
        estimator = self._estimator()
        for true_pos in [(5.0, 5.0), (10.0, 10.0), (13.0, 7.0)]:
            estimate = estimator.estimate(true_pos)
            error = math.hypot(
                estimate[0] - true_pos[0], estimate[1] - true_pos[1]
            )
            assert error < 2.5  # within grid spacing

    def test_on_reference_tag_is_nearly_exact(self):
        estimator = self._estimator(k=1)
        estimate = estimator.estimate((8.0, 8.0))  # a reference position
        assert math.hypot(estimate[0] - 8.0, estimate[1] - 8.0) < 0.5

    def test_noise_degrades_accuracy(self):
        estimator = self._estimator()
        rng = random.Random(5)
        noiseless = estimator.error((7.0, 9.0))
        noisy = [
            LandmarcEstimator(
                corner_readers(0.0, 0.0, 20.0, 20.0),
                grid_reference_tags(0.0, 0.0, 20.0, 20.0, spacing=4.0),
                PathLossModel(shadow_sigma=8.0),
                k=4,
            ).error((7.0, 9.0), rng)
            for _ in range(20)
        ]
        assert sum(noisy) / len(noisy) > noiseless

    def test_estimate_within_reference_hull(self):
        estimator = self._estimator()
        rng = random.Random(9)
        for _ in range(20):
            x, y = estimator.estimate((10.0, 10.0), rng)
            assert 0.0 <= x <= 20.0
            assert 0.0 <= y <= 20.0

    def test_validation(self):
        readers = corner_readers(0.0, 0.0, 10.0, 10.0)
        tags = grid_reference_tags(0.0, 0.0, 10.0, 10.0, spacing=5.0)
        with pytest.raises(ValueError):
            LandmarcEstimator(readers, tags, k=0)
        with pytest.raises(ValueError):
            LandmarcEstimator(readers, tags[:2], k=4)
        with pytest.raises(ValueError):
            LandmarcEstimator([], tags, k=2)
        estimator = LandmarcEstimator(readers, tags, k=2)
        with pytest.raises(ValueError):
            estimator.estimate_from_rssi([1.0])  # wrong vector length
