"""Unit tests for RFID readers, badge sensors and context sources."""

import random

import pytest

from repro.core.context import ContextFactory
from repro.sensing.badge import BadgeSensorNetwork
from repro.sensing.mobility import TruePosition
from repro.sensing.noise import LocationNoiseModel, RoomNoiseModel, ZoneNoiseModel
from repro.sensing.rfid import ZoneReaderArray
from repro.sensing.source import (
    BadgeContextSource,
    RFIDContextSource,
    TrackedLocationSource,
    merge_streams,
)

ZONES = ["dock", "staging", "shelf-A", "checkout"]
ROOMS = ["office-1", "office-2", "corridor"]


def truth(subject="tag-1", rooms=("dock", "dock", "staging")):
    return [
        TruePosition(subject, float(i) * 2.0, (float(i), 0.0), room)
        for i, room in enumerate(rooms)
    ]


class TestZoneReaderArray:
    def _array(self, err=0.0, miss=0.0, dup=0.0, seed=1):
        return ZoneReaderArray(
            ZoneNoiseModel(err, ZONES, random.Random(seed)),
            random.Random(seed + 1),
            miss_rate=miss,
            duplicate_rate=dup,
        )

    def test_faithful_reads_without_noise(self):
        reads = self._array().read_stream(truth())
        assert [r.zone for r in reads] == ["dock", "dock", "staging"]
        assert all(not r.corrupted for r in reads)

    def test_misses_drop_reads(self):
        reads = self._array(miss=1.0).read_stream(truth())
        assert reads == []

    def test_duplicates_add_delayed_copies(self):
        reads = self._array(dup=1.0).read_stream(truth())
        assert len(reads) == 6
        # Each duplicate mirrors its original.
        zones = [r.zone for r in reads]
        assert zones.count("dock") == 4

    def test_outside_zone_samples_skipped(self):
        samples = [TruePosition("t", 0.0, (0.0, 0.0), None)]
        assert self._array().read_stream(samples) == []

    def test_reads_sorted_by_time(self):
        reads = self._array(dup=0.5, seed=9).read_stream(truth())
        times = [r.timestamp for r in reads]
        assert times == sorted(times)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._array(miss=2.0)


class TestBadgeSensorNetwork:
    def test_sightings_follow_truth(self):
        network = BadgeSensorNetwork(
            RoomNoiseModel(0.0, ROOMS, random.Random(1)),
            random.Random(2),
            miss_rate=0.0,
        )
        sightings = network.sightings(truth("peter", ROOMS))
        assert [s.room for s in sightings] == ROOMS
        assert all(not s.corrupted for s in sightings)

    def test_misses(self):
        network = BadgeSensorNetwork(
            RoomNoiseModel(0.0, ROOMS, random.Random(1)),
            random.Random(2),
            miss_rate=1.0,
        )
        assert network.sightings(truth("peter", ROOMS)) == []

    def test_corrupted_sightings_flagged(self):
        network = BadgeSensorNetwork(
            RoomNoiseModel(1.0, ROOMS, random.Random(1)),
            random.Random(2),
            miss_rate=0.0,
        )
        for sighting in network.sightings(truth("peter", ROOMS)):
            assert sighting.corrupted


class TestContextSources:
    def test_tracked_location_source(self):
        factory = ContextFactory()
        source = TrackedLocationSource(
            truth("peter", ROOMS),
            LocationNoiseModel(0.0, random.Random(1)),
            factory,
            lifespan=30.0,
        )
        contexts = list(source.contexts())
        assert len(contexts) == 3
        assert contexts[0].ctx_type == "location"
        assert contexts[0].subject == "peter"
        assert contexts[0].lifespan == 30.0
        assert contexts[0].attr("true_room") == "office-1"

    def test_badge_source(self):
        factory = ContextFactory()
        network = BadgeSensorNetwork(
            RoomNoiseModel(0.0, ROOMS, random.Random(1)),
            random.Random(2),
            miss_rate=0.0,
        )
        source = BadgeContextSource(
            network.sightings(truth("peter", ROOMS)), factory
        )
        contexts = list(source.contexts())
        assert [c.value for c in contexts] == ROOMS
        assert contexts[0].ctx_type == "badge"

    def test_rfid_source(self):
        factory = ContextFactory()
        array = ZoneReaderArray(
            ZoneNoiseModel(0.0, ZONES, random.Random(1)),
            random.Random(2),
            miss_rate=0.0,
            duplicate_rate=0.0,
        )
        source = RFIDContextSource(array.read_stream(truth()), factory)
        contexts = list(source.contexts())
        assert [c.value for c in contexts] == ["dock", "dock", "staging"]
        assert contexts[0].ctx_type == "rfid_read"

    def test_merge_streams_sorted_and_complete(self):
        factory = ContextFactory()
        a = TrackedLocationSource(
            truth("peter", ROOMS),
            LocationNoiseModel(0.0, random.Random(1)),
            factory,
        )
        b = BadgeContextSource(
            BadgeSensorNetwork(
                RoomNoiseModel(0.0, ROOMS, random.Random(3)),
                random.Random(4),
                miss_rate=0.0,
            ).sightings(truth("alice", ROOMS)),
            factory,
        )
        merged = merge_streams(a, b)
        assert len(merged) == 6
        times = [c.timestamp for c in merged]
        assert times == sorted(times)

    def test_corruption_flag_propagates(self):
        factory = ContextFactory()
        source = TrackedLocationSource(
            truth("peter", ROOMS),
            LocationNoiseModel(1.0, random.Random(1)),
            factory,
        )
        assert all(c.corrupted for c in source.contexts())
