"""Unit tests for the error-injection models."""

import math
import random

import pytest

from repro.sensing.noise import LocationNoiseModel, RoomNoiseModel, ZoneNoiseModel


class TestLocationNoiseModel:
    def test_err_rate_validation(self):
        with pytest.raises(ValueError):
            LocationNoiseModel(1.5, random.Random(0))
        with pytest.raises(ValueError):
            LocationNoiseModel(0.1, random.Random(0), displacement_range=(0, 5))
        with pytest.raises(ValueError):
            LocationNoiseModel(0.1, random.Random(0), displacement_range=(5, 3))

    def test_zero_rate_never_corrupts(self):
        model = LocationNoiseModel(0.0, random.Random(1))
        for _ in range(100):
            assert not model.observe((0.0, 0.0)).corrupted

    def test_one_rate_always_corrupts(self):
        model = LocationNoiseModel(1.0, random.Random(1))
        for _ in range(100):
            assert model.observe((0.0, 0.0)).corrupted

    def test_corrupted_displacement_in_range(self):
        model = LocationNoiseModel(
            1.0, random.Random(2), displacement_range=(6.0, 15.0)
        )
        for _ in range(100):
            reading = model.observe((10.0, 10.0))
            displacement = math.hypot(
                reading.value[0] - 10.0, reading.value[1] - 10.0
            )
            assert 6.0 <= displacement <= 15.0

    def test_expected_jitter_is_small(self):
        model = LocationNoiseModel(0.0, random.Random(3), jitter_sigma=0.25)
        for _ in range(100):
            reading = model.observe((0.0, 0.0))
            assert math.hypot(*reading.value) < 2.0  # ~8 sigma

    def test_observed_rate_matches_err_rate(self):
        model = LocationNoiseModel(0.3, random.Random(4))
        corrupted = sum(
            model.observe((0.0, 0.0)).corrupted for _ in range(4000)
        )
        assert 0.25 < corrupted / 4000 < 0.35


class TestRoomNoiseModel:
    ROOMS = ["a", "b", "c", "d"]

    def test_needs_two_rooms(self):
        with pytest.raises(ValueError):
            RoomNoiseModel(0.1, ["only"], random.Random(0))

    def test_expected_reports_true_room(self):
        model = RoomNoiseModel(0.0, self.ROOMS, random.Random(1))
        for _ in range(50):
            reading = model.observe("b")
            assert reading.value == "b"
            assert not reading.corrupted

    def test_corrupted_reports_other_room(self):
        model = RoomNoiseModel(1.0, self.ROOMS, random.Random(1))
        for _ in range(50):
            reading = model.observe("b")
            assert reading.value != "b"
            assert reading.value in self.ROOMS
            assert reading.corrupted


class TestZoneNoiseModel:
    ZONES = ["dock", "staging", "shelf-A", "checkout"]

    def test_corrupted_is_cross_read(self):
        model = ZoneNoiseModel(1.0, self.ZONES, random.Random(2))
        for _ in range(50):
            reading = model.observe("dock")
            assert reading.corrupted
            assert reading.value in self.ZONES
            assert reading.value != "dock"

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ZoneNoiseModel(-0.1, self.ZONES, random.Random(0))
        with pytest.raises(ValueError):
            ZoneNoiseModel(0.1, ["one"], random.Random(0))
