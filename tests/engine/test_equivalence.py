"""Decision equivalence: sharded engine vs single-pool middleware.

The engine's whole claim is that sharding is *transparent*: for every
deterministic strategy, every stream and every use-window kind, the
sharded engine discards and delivers exactly the contexts the
single-pool :class:`Middleware` would.  This module checks that claim
property-style on hundreds of randomized (stream, constraint-set,
strategy, window) instances.

``drop-random`` is excluded by design: the per-shard RNGs draw in a
different order than one global RNG, so its decisions are only
distributionally -- not pointwise -- equivalent.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.checker import ConstraintChecker
from repro.constraints.parser import parse_constraint
from repro.core.context import Context
from repro.core.strategy import make_strategy
from repro.engine import EngineConfig, ShardedEngine
from repro.middleware.bus import ContextDelivered, ContextDiscarded
from repro.middleware.manager import Middleware

TYPES = ("loc", "badge", "rfid", "temp", "free1", "free2")
SUBJECTS = ("s1", "s2", "s3")
STRATEGIES = ("drop-latest", "drop-all", "drop-bad", "opt-r")
LIFESPANS = (float("inf"), 5.0, 12.0)


def make_constraints(rng):
    """Two independent scope groups with randomized tightness."""
    constraints = []
    for group, (t1, t2) in enumerate((("loc", "badge"), ("rfid", "temp"))):
        for i in range(rng.randint(1, 2)):
            bound = rng.choice((3.0, 5.0))
            constraints.append(
                parse_constraint(
                    f"g{group}c{i}",
                    f"forall a in {t1}, forall b in {t2} : "
                    f"same_subject(a, b) implies within_time(a, b, {bound})",
                )
            )
    return constraints


def make_stream(rng, n=40, lifespans=LIFESPANS):
    """A timestamp-sorted stream mixing constrained/unconstrained types."""
    contexts = []
    t = 0.0
    for i in range(n):
        t += rng.random() * 2.0
        contexts.append(
            Context(
                ctx_id=f"c{i}",
                ctx_type=rng.choice(TYPES),
                subject=rng.choice(SUBJECTS),
                value=float(i),
                timestamp=t,
                lifespan=rng.choice(lifespans),
                corrupted=rng.random() < 0.15,
            )
        )
    return contexts


def reference_decisions(constraints, strategy_name, stream, *, use_window,
                        use_delay):
    """Run the single-pool middleware; returns (delivered, discarded) ids."""
    middleware = Middleware(
        ConstraintChecker(constraints),
        make_strategy(strategy_name),
        use_window=use_window,
        use_delay=use_delay,
    )
    delivered, discarded = [], []
    middleware.bus.subscribe(
        ContextDelivered, lambda e: delivered.append(e.context.ctx_id)
    )
    middleware.bus.subscribe(
        ContextDiscarded, lambda e: discarded.append(e.context.ctx_id)
    )
    middleware.receive_all(stream)
    return delivered, discarded


def engine_decisions(constraints, strategy_name, stream, *, shards, mode,
                     use_window, use_delay):
    engine = ShardedEngine(
        constraints,
        strategy=strategy_name,
        config=EngineConfig(
            shards=shards,
            mode=mode,
            use_window=use_window,
            use_delay=use_delay,
        ),
    )
    result = engine.run(stream)
    return result.delivered_ids, result.discarded_ids


def run_trial(seed, *, shards=2, mode="inline", n=40):
    rng = random.Random(seed)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=n)
    strategy_name = STRATEGIES[seed % len(STRATEGIES)]
    if seed % 2:
        use_window, use_delay = 4, rng.choice((0.0, 2.0, 6.0))
    else:
        use_window, use_delay = seed % 7, None
    expected = reference_decisions(
        constraints, strategy_name, stream,
        use_window=use_window, use_delay=use_delay,
    )
    actual = engine_decisions(
        constraints, strategy_name, stream,
        shards=shards, mode=mode,
        use_window=use_window, use_delay=use_delay,
    )
    assert actual == expected, (
        f"decision mismatch (seed={seed}, strategy={strategy_name}, "
        f"window={use_window}, delay={use_delay}): "
        f"engine {actual} != middleware {expected}"
    )


class TestInlineEquivalence:
    """Inline mode is pointwise decision-identical for both window kinds."""

    @pytest.mark.parametrize("block", range(10))
    def test_random_streams(self, block):
        # 10 blocks x 20 seeds = 200 random (stream, constraints,
        # strategy, window) instances -- the acceptance floor.
        for seed in range(block * 20, block * 20 + 20):
            run_trial(seed, shards=2)

    @pytest.mark.parametrize("shards", [1, 3, 4])
    def test_shard_count_is_transparent(self, shards):
        for seed in (3, 8, 13, 22):
            run_trial(seed, shards=shards)

    def test_larger_streams(self):
        for seed in (101, 202):
            run_trial(seed, shards=4, n=120)


class TestLocalModeEquivalence:
    """Shard-local time windows decompose exactly on sorted streams.

    Restricted to non-expiring contexts: the shard-local clock only
    advances on shard arrivals, so when a context can expire *between*
    a pending use's due time and the shard's next arrival, the single
    pool (whose clock every arrival advances) may expire it before the
    use drains while the shard drains the use first.  With no expiry
    the shard's state sequence is identical either way -- documented in
    docs/engine.md as the local/process-mode window semantics.
    """

    def test_time_window_decisions_match_as_sets(self):
        for seed in range(0, 40, 2):
            rng = random.Random(seed)
            constraints = make_constraints(rng)
            stream = make_stream(rng, lifespans=(float("inf"),))
            strategy_name = STRATEGIES[seed % len(STRATEGIES)]
            delay = rng.choice((0.0, 2.0, 6.0))
            expected = reference_decisions(
                constraints, strategy_name, stream,
                use_window=4, use_delay=delay,
            )
            actual = engine_decisions(
                constraints, strategy_name, stream,
                shards=2, mode="local", use_window=4, use_delay=delay,
            )
            # Cross-shard interleaving differs from the single pool's
            # use order, but the decision *sets* must coincide.
            assert sorted(actual[0]) == sorted(expected[0])
            assert sorted(actual[1]) == sorted(expected[1])


class TestProcessModeEquivalence:
    def test_process_mode_matches_local_decomposition(self):
        rng = random.Random(7)
        constraints = make_constraints(rng)
        stream = make_stream(rng, n=60)
        local = engine_decisions(
            constraints, "drop-latest", stream,
            shards=2, mode="local", use_window=4, use_delay=3.0,
        )
        process = engine_decisions(
            constraints, "drop-latest", stream,
            shards=2, mode="process", use_window=4, use_delay=3.0,
        )
        # Same decomposition, different executor: results must be
        # identical event-for-event, not just as sets.
        assert process == local


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    shards=st.integers(min_value=1, max_value=4),
    strategy_name=st.sampled_from(STRATEGIES),
    window=st.one_of(
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    ),
)
def test_equivalence_property(seed, shards, strategy_name, window):
    """Hypothesis-driven variant: arbitrary seeds/shards/windows."""
    rng = random.Random(seed)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=30)
    if isinstance(window, int):
        use_window, use_delay = window, None
    else:
        use_window, use_delay = 4, window
    expected = reference_decisions(
        constraints, strategy_name, stream,
        use_window=use_window, use_delay=use_delay,
    )
    actual = engine_decisions(
        constraints, strategy_name, stream,
        shards=shards, mode="inline",
        use_window=use_window, use_delay=use_delay,
    )
    assert actual == expected


class TestBatchKernelToggle:
    """``EngineConfig.batch_kernels`` must be decision-invisible.

    The batched-detection planner precomputes verdicts through
    ``detect_batch``; turning it off forces the per-context detect on
    the very same runs.  Decisions -- and the reference middleware's --
    must be pointwise identical either way, including on streams with
    finite lifespans (where the planner's per-row expiry cutoff does
    the expiry sweep's job) and duplicated deliveries (which close the
    planned run early).
    """

    def engine_with_toggle(self, constraints, strategy_name, stream, *,
                           batch_kernels, use_window, use_delay):
        engine = ShardedEngine(
            constraints,
            strategy=strategy_name,
            config=EngineConfig(
                shards=2,
                mode="inline",
                use_window=use_window,
                use_delay=use_delay,
                batch_kernels=batch_kernels,
            ),
        )
        result = engine.run(stream)
        return result.delivered_ids, result.discarded_ids

    @pytest.mark.parametrize("seed", [1, 4, 9, 16, 25, 36])
    def test_on_off_decisions_identical(self, seed):
        rng = random.Random(seed)
        constraints = make_constraints(rng)
        stream = make_stream(rng, n=60)
        strategy_name = STRATEGIES[seed % len(STRATEGIES)]
        use_window, use_delay = (4, 2.0) if seed % 2 else (3, None)
        on = self.engine_with_toggle(
            constraints, strategy_name, stream,
            batch_kernels=True, use_window=use_window, use_delay=use_delay,
        )
        off = self.engine_with_toggle(
            constraints, strategy_name, stream,
            batch_kernels=False, use_window=use_window, use_delay=use_delay,
        )
        assert on == off

    def test_duplicate_arrivals_close_the_planned_run(self):
        rng = random.Random(5)
        constraints = make_constraints(rng)
        stream = make_stream(rng, n=40)
        # Re-deliver a prefix mid-stream: live-id duplicates must be
        # refused identically whether or not verdicts were planned.
        stream = stream[:20] + stream[5:10] + stream[20:]
        on = self.engine_with_toggle(
            constraints, "drop-latest", stream,
            batch_kernels=True, use_window=50, use_delay=None,
        )
        off = self.engine_with_toggle(
            constraints, "drop-latest", stream,
            batch_kernels=False, use_window=50, use_delay=None,
        )
        assert on == off
