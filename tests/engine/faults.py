"""Fault-injection harness for the process-mode supervisor tests.

The engine's ``fault_injector`` hook is pickled into every shard
worker, so the injectors here are module-level dataclasses (closures
and lambdas would not survive the trip).  Each is called inside the
worker as ``injector(shard_id, batch_index, attempt, phase)`` --
``phase`` is ``"start"`` (before a batch) or ``"mid"`` (halfway
through one, after state has already mutated) -- and misbehaves like a
real worker would: ``crash`` dies without cleanup (``os._exit``, no
ack, no exception), ``hang`` blocks past the batch timeout, ``raise``
poisons the batch with an exception the worker reports.

``until_attempt`` bounds the chaos: the default ``1`` makes a fault
fire on the first attempt only (the respawn runs clean -- the retry
path), while ``None`` keeps firing on every attempt (the
retry-exhaustion / degradation path).  The injector is never invoked
in the parent, so a degraded shard always runs clean.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ScheduledFault", "EveryShardOnce"]


@dataclass(frozen=True)
class ScheduledFault:
    """Misbehave once a scheduled batch is reached in a worker.

    Parameters
    ----------
    action:
        ``"crash"`` (``os._exit(13)``), ``"hang"`` (sleep ``hang_s``)
        or ``"raise"`` (``RuntimeError``).
    at_batch:
        Batch index that triggers the fault (later batches too --
        a worker that got past the trigger point stays vulnerable
        until ``until_attempt`` retires the fault).
    phase:
        ``"start"`` or ``"mid"`` -- whether to strike before the batch
        or halfway through it (state already mutated, no ack sent).
    shards:
        Shard ids to strike; ``None`` strikes every shard.
    until_attempt:
        Fire only while ``attempt < until_attempt``; ``None`` fires on
        every attempt (a *persistent* fault that exhausts the retry
        budget).
    hang_s:
        Sleep length of the ``hang`` action; pick it well past the
        configured ``batch_timeout_s``.
    """

    action: str
    at_batch: int = 0
    phase: str = "mid"
    shards: Optional[Tuple[int, ...]] = None
    until_attempt: Optional[int] = 1
    hang_s: float = 120.0

    def __call__(
        self, shard_id: int, batch_index: int, attempt: int, phase: str
    ) -> None:
        if self.shards is not None and shard_id not in self.shards:
            return
        if phase != self.phase or batch_index < self.at_batch:
            return
        if self.until_attempt is not None and attempt >= self.until_attempt:
            return
        if self.action == "crash":
            os._exit(13)
        elif self.action == "hang":
            time.sleep(self.hang_s)
        elif self.action == "raise":
            raise RuntimeError(
                f"injected poison in shard {shard_id}, "
                f"batch {batch_index}, attempt {attempt}"
            )
        else:  # pragma: no cover - harness misuse
            raise ValueError(f"unknown fault action {self.action!r}")


@dataclass(frozen=True)
class EveryShardOnce:
    """Kill every shard's worker exactly once (the acceptance fault).

    Each shard's first attempt crashes mid-way through ``at_batch``;
    every respawn runs clean, so the run must complete with one
    restart per shard and identical decisions.
    """

    at_batch: int = 1

    def __call__(
        self, shard_id: int, batch_index: int, attempt: int, phase: str
    ) -> None:
        if phase == "mid" and batch_index >= self.at_batch and attempt == 0:
            os._exit(13)
