"""Fault-injection suite: determinism of process mode under failure.

Every test runs the supervised process mode against a chaos schedule
from :mod:`tests.engine.faults` and checks the paper-level invariant:
worker crashes, hangs and poisoned batches change *nothing* about the
resolution decisions -- the run completes with the exact signature of
a fault-free run (and, as decision sets, of the inline single-pool
schedule), with the recovery visible in telemetry instead of in the
results.  Zero silently-dropped decisions, ever.

The suite is marked ``faults`` so CI can run it under a hard
``pytest-timeout`` budget (a hung supervisor fails fast); it still
runs in the plain tier-1 invocation.
"""

import pytest

from repro.engine import (
    EngineConfig,
    EngineWorkerError,
    FaultConfig,
    ShardedEngine,
)
from repro.engine.workload import scalability_workload
from repro.ledger import ledger_signature, read_ledger, verify_ledger
from repro.obs import Telemetry

from .faults import EveryShardOnce, ScheduledFault

pytestmark = pytest.mark.faults

N_CONTEXTS = 300
SHARDS = 3


@pytest.fixture(scope="module")
def workload():
    constraints, contexts = scalability_workload(
        N_CONTEXTS, scope_groups=SHARDS, types_per_group=2
    )
    return constraints, contexts


def fault_config(**overrides):
    """Test-scale fault tunables: tight timeouts, fast backoff."""
    defaults = dict(
        max_retries=2,
        batch_timeout_s=5.0,
        backoff_base_s=0.01,
        heartbeat_interval_s=0.1,
        checkpoint_every=2,
    )
    defaults.update(overrides)
    return FaultConfig(**defaults)


def run_engine(workload, *, mode="process", injector=None, fault=None,
               telemetry=None, shards=SHARDS, ledger_path=None):
    constraints, contexts = workload
    engine = ShardedEngine(
        constraints,
        strategy="drop-latest",
        config=EngineConfig(
            shards=shards,
            mode=mode,
            use_delay=5.0,  # time windows: the decomposable window kind
            batch_size=16,
            fault=fault or fault_config(),
            ledger_path=str(ledger_path) if ledger_path else None,
        ),
        telemetry=telemetry,
        fault_injector=injector,
    )
    return engine.run(list(contexts))


def assert_no_dropped_decisions(result):
    """Every routed context got a decision (the no-silent-drop bound)."""
    signature = result.decision_signature()
    decided = len(signature["delivered"]) + len(signature["discarded"])
    assert decided == N_CONTEXTS


class TestCrashRecovery:
    def test_killing_every_worker_once_changes_no_decision(self, workload):
        # The acceptance fault: each shard's worker dies mid-batch on
        # its first attempt; respawns replay from the last checkpoint.
        clean = run_engine(workload)
        telemetry = Telemetry(enabled=True)
        faulty = run_engine(
            workload, injector=EveryShardOnce(at_batch=1), telemetry=telemetry
        )
        assert faulty.decision_signature() == clean.decision_signature()
        assert faulty.metrics.mode == "process"
        assert faulty.metrics.worker_restarts >= SHARDS
        assert faulty.metrics.batches_replayed > 0
        assert faulty.metrics.degraded_shards == 0
        assert_no_dropped_decisions(faulty)
        # The recovery is visible in the telemetry registry itself.
        registry = telemetry.registry
        restarts = sum(
            registry.value("engine_worker_restarts_total", labels)
            for labels in registry.series_labels("engine_worker_restarts_total")
        )
        assert restarts >= SHARDS

    def test_crash_matches_inline_as_decision_sets(self, workload):
        inline = run_engine(workload, mode="inline")
        faulty = run_engine(workload, injector=EveryShardOnce(at_batch=1))
        inline_sig = inline.decision_signature()
        faulty_sig = faulty.decision_signature()
        assert sorted(faulty_sig["delivered"]) == sorted(inline_sig["delivered"])
        assert sorted(faulty_sig["discarded"]) == sorted(inline_sig["discarded"])

    def test_single_shard_crash_matches_inline_pointwise(self, workload):
        # With one shard the shard-local schedule IS the global
        # schedule, so recovery must be pointwise inline-identical.
        inline = run_engine(workload, mode="inline", shards=1)
        faulty = run_engine(
            workload, injector=EveryShardOnce(at_batch=1), shards=1
        )
        assert faulty.decision_signature() == inline.decision_signature()
        assert faulty.metrics.worker_restarts >= 1


class TestLedgerUnderFaults:
    def test_crash_replay_ledger_has_no_duplicate_or_missing_decisions(
        self, workload, tmp_path
    ):
        # Checkpointed replay re-executes batches inside the respawned
        # worker; the merged ledger must still record each context's
        # arrival and verdict exactly once -- replay is invisible in
        # the audit trail, not double-counted in it.
        path = tmp_path / "faulty.jsonl"
        result = run_engine(
            workload, injector=EveryShardOnce(at_batch=1), ledger_path=path
        )
        assert result.metrics.worker_restarts >= SHARDS
        check = verify_ledger(str(path))
        assert check.ok, check.summary()
        entries = read_ledger(str(path))
        arrivals = [e["ctx"]["ctx_id"] for e in entries if e["kind"] == "arrival"]
        assert len(arrivals) == N_CONTEXTS
        assert len(set(arrivals)) == N_CONTEXTS
        verdicts = [
            e["ctx_id"]
            for e in entries
            if e["kind"] in ("deliver", "discard", "expire")
        ]
        assert len(verdicts) == N_CONTEXTS
        assert len(set(verdicts)) == N_CONTEXTS
        # And the decisions the ledger tells are the ones the run made.
        assert ledger_signature(entries) == result.decision_signature()

    def test_faulty_ledger_matches_a_clean_run_ledger(self, workload, tmp_path):
        clean_path = tmp_path / "clean.jsonl"
        faulty_path = tmp_path / "faulty.jsonl"
        run_engine(workload, ledger_path=clean_path)
        run_engine(
            workload,
            injector=EveryShardOnce(at_batch=1),
            ledger_path=faulty_path,
        )
        clean = ledger_signature(read_ledger(str(clean_path)))
        faulty = ledger_signature(read_ledger(str(faulty_path)))
        assert clean == faulty


class TestHangRecovery:
    def test_hang_past_batch_timeout_is_retried(self, workload):
        clean = run_engine(workload)
        fault = fault_config(batch_timeout_s=0.6)
        hung = run_engine(
            workload,
            injector=ScheduledFault("hang", at_batch=1, shards=(1,)),
            fault=fault,
        )
        assert hung.decision_signature() == clean.decision_signature()
        assert hung.metrics.worker_restarts >= 1
        assert hung.metrics.per_shard[1].restarts >= 1
        assert_no_dropped_decisions(hung)


class TestRetryExhaustion:
    def test_persistent_poison_degrades_with_identical_decisions(
        self, workload
    ):
        clean = run_engine(workload)
        fault = fault_config(max_retries=1)
        poisoned = run_engine(
            workload,
            injector=ScheduledFault(
                "raise", at_batch=1, shards=(2,), until_attempt=None
            ),
            fault=fault,
        )
        # The shard finished in-parent: same decisions, flagged run.
        assert poisoned.decision_signature() == clean.decision_signature()
        assert poisoned.metrics.degraded_shards == 1
        assert poisoned.metrics.per_shard[2].degraded
        assert poisoned.metrics.worker_restarts >= 1
        assert_no_dropped_decisions(poisoned)

    def test_poisoned_shard_raises_instead_of_short_result(self, workload):
        # Regression for the silent `except Exception` fallback the
        # facade used to have: a failing worker must surface as
        # EngineWorkerError (with the worker traceback), never as a
        # quietly shorter delivered list.
        fault = fault_config(max_retries=1, degrade_on_exhaustion=False)
        with pytest.raises(EngineWorkerError) as excinfo:
            run_engine(
                workload,
                injector=ScheduledFault(
                    "raise", at_batch=0, shards=(0,), until_attempt=None
                ),
                fault=fault,
            )
        assert excinfo.value.shard_id == 0
        assert excinfo.value.attempts == 2
        assert "injected poison" in excinfo.value.detail
