"""Scalability smoke test: real measured numbers into BENCH_engine.json.

The full-scale benchmark lives in ``benchmarks/test_bench_engine.py``
(and asserts the >= 2x acceptance threshold at 4 shards); this tier-1
smoke keeps the machinery honest on every test run with a smaller
stream and a deliberately loose threshold so timing noise on a loaded
machine cannot flake the suite.
"""

import json
import pathlib

from repro.engine import write_bench_json
from repro.engine.workload import run_scalability_bench

OUT_PATH = (
    pathlib.Path(__file__).resolve().parents[2]
    / "benchmarks"
    / "out"
    / "BENCH_engine.json"
)


class TestScalabilityBench:
    def test_sharding_speeds_up_and_records_json(self):
        # batch_kernels off: the sharding speedup is measured on the
        # per-context detection path whose pool-scan cost sharding
        # removes -- columnar batched detection attacks the same cost,
        # so with it on the ratio measures two optimizations at once.
        record = run_scalability_bench(
            (1, 4), n_contexts=800, use_window=20, repeats=1,
            batch_kernels=False,
        )
        by_shards = record["contexts_per_second_by_shards"]
        assert set(by_shards) == {"1", "4"}
        for row in by_shards.values():
            assert row["contexts_per_second"] > 0
            assert row["delivered"] + row["discarded"] <= 800
        # Decision identity across shard counts is asserted inside
        # run_scalability_bench; here we only require the speedup to
        # point the right way (the full benchmark enforces >= 2x).
        assert record["speedup"]["4_shards_vs_1"] >= 1.3

        document = write_bench_json(OUT_PATH, "engine_scalability_smoke", record)
        assert "engine_scalability_smoke" in document
        reread = json.loads(OUT_PATH.read_text(encoding="utf-8"))
        assert (
            reread["engine_scalability_smoke"]["speedup"]["4_shards_vs_1"]
            == record["speedup"]["4_shards_vs_1"]
        )

    def test_decision_divergence_is_detected(self):
        # The runner must refuse to report throughput for a sharding
        # that changes decisions; drop-random's per-shard RNG order
        # difference is exactly such a case.
        import pytest

        from repro.engine.workload import scalability_workload

        constraints, contexts = scalability_workload(
            240, scope_groups=2, types_per_group=3, time_horizon=2.0
        )
        try:
            run_scalability_bench(
                (1, 2),
                strategy="drop-random",
                repeats=1,
                workload=(constraints, contexts),
            )
        except AssertionError:
            return  # divergence caught, as designed
        # drop-random may coincide by luck on tiny streams; that's
        # acceptable -- the guard is what's under test, so only a
        # silent wrong report would be a failure, and the runner
        # compared decisions either way.
        pytest.skip("drop-random happened to agree on this stream")


class TestCorruptBenchJson:
    def test_corrupt_file_logs_warning_and_resets(self, tmp_path, caplog):
        import logging

        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json at all", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            document = write_bench_json(path, "wl", {"x": 1})
        assert "resetting corrupt bench JSON" in caplog.text
        assert document == {"wl": {"x": 1}}
        assert json.loads(path.read_text(encoding="utf-8")) == {"wl": {"x": 1}}

    def test_non_object_top_level_logs_warning_and_resets(self, tmp_path, caplog):
        import logging

        path = tmp_path / "BENCH_engine.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            document = write_bench_json(path, "wl", {"x": 1})
        assert "expected object" in caplog.text
        assert document == {"wl": {"x": 1}}

    def test_healthy_file_keeps_other_workloads_silently(self, tmp_path, caplog):
        import logging

        path = tmp_path / "BENCH_engine.json"
        write_bench_json(path, "first", {"a": 1})
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            document = write_bench_json(path, "second", {"b": 2})
        assert caplog.text == ""
        assert document == {"first": {"a": 1}, "second": {"b": 2}}
