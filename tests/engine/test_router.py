"""Unit tests for the context router."""

import zlib

from repro.constraints.parser import parse_constraint
from repro.engine.router import ContextRouter
from repro.engine.scope import partition_constraints
from tests.conftest import make_context


def partition(shards=2):
    constraints = [
        parse_constraint(
            "pair",
            "forall a in loc, forall b in badge : "
            "same_subject(a, b) implies within_time(a, b, 5.0)",
        )
    ]
    return partition_constraints(constraints, shards)


class TestContextRouter:
    def test_constrained_type_goes_to_owning_shard(self):
        part = partition()
        router = ContextRouter(part)
        owner = part.shard_of_type("loc")
        for subject in ("s1", "s2", "s3"):
            ctx = make_context(ctx_type="loc", subject=subject)
            assert router.route(ctx) == owner
            ctx = make_context(ctx_type="badge", subject=subject)
            assert router.route(ctx) == owner

    def test_unconstrained_type_spreads_by_subject_crc32(self):
        router = ContextRouter(partition(shards=4))
        for subject in ("alice", "bob", "carol"):
            expected = zlib.crc32(subject.encode("utf-8")) % 4
            ctx = make_context(ctx_type="free", subject=subject)
            assert router.route(ctx) == expected

    def test_subjectless_contexts_keyed_by_type(self):
        router = ContextRouter(partition(shards=4))
        ctx = make_context(ctx_type="heartbeat", subject="")
        expected = zlib.crc32(b"heartbeat") % 4
        assert router.route(ctx) == expected

    def test_routing_is_stable_across_routers(self):
        first = ContextRouter(partition(shards=3))
        second = ContextRouter(partition(shards=3))
        contexts = [
            make_context(ctx_type=t, subject=s)
            for t in ("loc", "free", "other")
            for s in ("s1", "s2")
        ]
        assert [first.route(c) for c in contexts] == [
            second.route(c) for c in contexts
        ]

    def test_routed_counts_and_skew(self):
        router = ContextRouter(partition(shards=2))
        for i in range(6):
            router.route(make_context(ctx_type="loc", subject=f"s{i}"))
        assert sum(router.routed.values()) == 6
        assert router.load_skew() >= 1.0
