"""Facade-level tests: modes, events, metrics, config validation."""

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.engine.workload import scalability_workload
from repro.middleware.bus import (
    ContextAdmitted,
    ContextDelivered,
    Event,
)


def small_workload(n=120):
    return scalability_workload(n, scope_groups=2, types_per_group=3)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.shards == 4
        assert config.mode == "inline"
        assert config.batch_size == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"mode": "turbo"},
            {"use_window": -1},
            {"use_delay": -0.5},
            {"batch_size": 0},
            {"max_queue_batches": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_with_shards(self):
        assert EngineConfig(shards=2).with_shards(8).shards == 8


class TestShardedEngineModes:
    @pytest.mark.parametrize("mode", ["inline", "local", "process"])
    def test_all_modes_resolve_the_stream(self, mode):
        constraints, stream = small_workload()
        engine = ShardedEngine(
            constraints,
            config=EngineConfig(shards=2, mode=mode, use_window=5),
        )
        result = engine.run(stream)
        assert result.metrics.contexts_total == len(stream)
        assert len(result.delivered) + len(result.discarded) <= len(stream)
        assert result.metrics.elapsed_s > 0
        assert result.metrics.contexts_per_second > 0

    def test_inline_streams_events_live_on_engine_bus(self):
        constraints, stream = small_workload(40)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="inline")
        )
        admitted = []
        engine.bus.subscribe(ContextAdmitted, admitted.append)
        engine.run(stream)
        assert admitted  # live events, not post-hoc replay

    def test_merged_events_republished_in_timestamp_order(self):
        constraints, stream = small_workload(60)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="local")
        )
        seen = []
        engine.bus.subscribe(Event, seen.append)
        result = engine.run(stream)
        assert seen == result.events
        stamps = [e.at for e in result.events]
        assert stamps == sorted(stamps)

    def test_per_shard_stats_cover_all_constraints(self):
        constraints, stream = small_workload()
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="inline")
        )
        result = engine.run(stream)
        assert sum(s.constraints for s in result.metrics.per_shard) == len(
            constraints
        )
        assert sum(s.contexts for s in result.metrics.per_shard) == len(stream)

    def test_delivered_events_match_delivered_list(self):
        constraints, stream = small_workload(80)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="inline")
        )
        result = engine.run(stream)
        from_events = [
            e.context.ctx_id
            for e in result.events
            if isinstance(e, ContextDelivered)
        ]
        assert from_events == result.delivered_ids

    def test_single_shard_engine_works(self):
        constraints, stream = small_workload(50)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=1, mode="inline")
        )
        result = engine.run(stream)
        assert result.metrics.contexts_total == 50

    def test_engine_consumes_lazy_iterables(self):
        constraints, stream = small_workload(40)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="inline")
        )
        result = engine.run(iter(stream))
        assert result.metrics.contexts_total == 40

    def test_rerun_resets_router_counts(self):
        constraints, stream = small_workload(30)
        engine = ShardedEngine(
            constraints, config=EngineConfig(shards=2, mode="inline")
        )
        engine.run(stream)
        engine.run(stream)
        assert sum(engine.router.routed.values()) == 30
