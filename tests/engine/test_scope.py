"""Unit tests for scope analysis: union-find partition + LPT packing."""

import pytest

from repro.constraints.parser import parse_constraint
from repro.engine.scope import UnionFind, partition_constraints


def chain(name, t1, t2, bound=5.0):
    return parse_constraint(
        name,
        f"forall a in {t1}, forall b in {t2} : "
        f"same_subject(a, b) implies within_time(a, b, {bound})",
    )


class TestUnionFind:
    def test_singletons_until_united(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert uf.find("a") != uf.find("b")
        uf.union("a", "b")
        assert uf.find("a") == uf.find("b")

    def test_groups_deterministic(self):
        uf = UnionFind()
        for key in ("c", "a", "b", "d"):
            uf.add(key)
        uf.union("c", "a")
        uf.union("b", "d")
        assert uf.groups() == uf.groups()


class TestPartition:
    def test_disjoint_scopes_land_on_distinct_shards(self):
        constraints = [chain("g0", "loc", "badge"), chain("g1", "rfid", "temp")]
        partition = partition_constraints(constraints, shards=2)
        shard_a = partition.shard_of_type("loc")
        shard_b = partition.shard_of_type("rfid")
        assert shard_a != shard_b
        assert partition.shard_of_type("badge") == shard_a
        assert partition.shard_of_type("temp") == shard_b

    def test_shared_type_merges_scopes(self):
        constraints = [
            chain("c0", "loc", "badge"),
            chain("c1", "badge", "rfid"),  # shares badge with c0
            chain("c2", "temp", "hum"),
        ]
        partition = partition_constraints(constraints, shards=4)
        assert len(partition.groups) == 2
        big = next(g for g in partition.groups if len(g.constraints) == 2)
        assert {c.name for c in big.constraints} == {"c0", "c1"}
        assert set(big.ctx_types) == {"loc", "badge", "rfid"}

    def test_unconstrained_type_is_unowned(self):
        partition = partition_constraints([chain("c", "loc", "badge")], 2)
        assert partition.shard_of_type("free") == -1

    def test_more_groups_than_shards_packs_by_weight(self):
        constraints = [
            chain("a0", "t0", "t1"),
            chain("a1", "t1", "t2"),  # group A: weight 2 constraints + 3 types
            chain("b0", "t3", "t4"),
            chain("c0", "t5", "t6"),
        ]
        partition = partition_constraints(constraints, shards=2)
        # Heaviest group (a0+a1) goes first to shard 0; the two light
        # groups pack onto the other shard before returning.
        weights = [
            len(partition.shard_constraints[s]) for s in range(2)
        ]
        assert sorted(weights) == [2, 2]
        assert partition.shard_of_type("t0") == partition.shard_of_type("t2")

    def test_deterministic_assignment(self):
        constraints = [chain(f"c{i}", f"t{i}", f"u{i}") for i in range(7)]
        first = partition_constraints(constraints, shards=3)
        second = partition_constraints(list(reversed(constraints)), shards=3)
        assert first.type_to_shard == second.type_to_shard

    def test_duplicate_names_rejected(self):
        constraints = [chain("dup", "a", "b"), chain("dup", "c", "d")]
        with pytest.raises(ValueError, match="unique"):
            partition_constraints(constraints, shards=2)

    def test_empty_constraint_set(self):
        partition = partition_constraints([], shards=3)
        assert partition.shards == 3
        assert partition.shard_of_type("anything") == -1
