"""Open engine sessions: chunked submit+close == one closed-loop run.

:class:`EngineStream` claims any chunking of a stream through an open
session is byte-identical to ``ShardedEngine.run`` over the whole
stream.  Randomized streams x chunk shapes pin that claim, reusing the
golden equivalence suite's generators.
"""

import random

import pytest

from repro.engine import EngineConfig, ShardedEngine
from repro.middleware.bus import (
    ContextDelivered,
    ContextDiscarded,
    ContextExpired,
)

from .test_equivalence import make_constraints, make_stream


def collect_events(bus):
    events = []
    bus.subscribe(
        ContextDelivered, lambda e: events.append(("D", e.context.ctx_id))
    )
    bus.subscribe(
        ContextDiscarded, lambda e: events.append(("X", e.context.ctx_id))
    )
    bus.subscribe(
        ContextExpired, lambda e: events.append(("E", e.context.ctx_id))
    )
    return events


def make_engine(constraints, *, use_window, use_delay, shards=2):
    return ShardedEngine(
        constraints,
        strategy="drop-bad",
        config=EngineConfig(
            shards=shards,
            mode="inline",
            use_window=use_window,
            use_delay=use_delay,
        ),
    )


def chunked(stream, sizes_rng):
    chunks, i = [], 0
    while i < len(stream):
        size = sizes_rng.randint(1, 7)
        chunks.append(stream[i : i + size])
        i += size
    return chunks


@pytest.mark.parametrize("seed", [0, 3, 11, 27, 42])
def test_chunked_stream_matches_run(seed):
    rng = random.Random(seed)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=50)
    use_window, use_delay = (
        (4, 2.0) if seed % 2 else (seed % 6, None)
    )

    reference = make_engine(
        constraints, use_window=use_window, use_delay=use_delay
    )
    expected = collect_events(reference.bus)
    reference.run(stream)

    engine = make_engine(
        constraints, use_window=use_window, use_delay=use_delay
    )
    actual = collect_events(engine.bus)
    session = engine.open_stream()
    for chunk in chunked(stream, random.Random(seed ^ 0xC0FFEE)):
        session.submit(chunk)
    session.close()

    assert actual == expected


def test_session_tallies_match_closed_loop_run():
    rng = random.Random(5)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=40)

    reference = make_engine(constraints, use_window=3, use_delay=None)
    expected = collect_events(reference.bus)
    reference.run(stream)

    engine = make_engine(constraints, use_window=3, use_delay=None)
    session = engine.open_stream()
    assert session.submit(stream[:25]) == 25
    assert session.submitted == 25
    assert session.submit(stream[25:]) == 15
    session.close()
    assert session.pending_uses() == 0
    # Tallies equal the closed-loop run's event counts, kind by kind.
    kinds = [kind for kind, _ in expected]
    assert session.delivered == kinds.count("D")
    assert session.discarded == kinds.count("X")
    assert session.expired == kinds.count("E")
    assert session.decided() == len(expected)


def test_closed_session_rejects_submissions():
    rng = random.Random(9)
    engine = make_engine(
        make_constraints(rng), use_window=2, use_delay=None
    )
    session = engine.open_stream()
    session.close()
    session.close()  # idempotent
    with pytest.raises(RuntimeError):
        session.submit(make_stream(rng, n=3))


def test_one_engine_supports_sequential_sessions():
    """open_stream builds fresh pipelines: a second session starts clean."""
    rng = random.Random(13)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=30)
    engine = make_engine(constraints, use_window=3, use_delay=None)

    first = engine.open_stream()
    first.submit(stream)
    first.close()

    second = engine.open_stream()
    second.submit(stream)
    second.close()
    # Same stream, fresh state: identical decision totals.
    assert (second.delivered, second.discarded, second.expired) == (
        first.delivered, first.discarded, first.expired,
    )
    assert second.pool_size() == first.pool_size()


@pytest.mark.parametrize("shards", [1, 3])
def test_shard_count_is_transparent_for_sessions(shards):
    rng = random.Random(21)
    constraints = make_constraints(rng)
    stream = make_stream(rng, n=40)

    reference = make_engine(
        constraints, use_window=4, use_delay=None, shards=2
    )
    expected = collect_events(reference.bus)
    reference.run(stream)

    engine = make_engine(
        constraints, use_window=4, use_delay=None, shards=shards
    )
    actual = collect_events(engine.bus)
    session = engine.open_stream()
    session.submit(stream)
    session.close()
    # Delivered/discarded order is shard-count invariant (the golden
    # equivalence guarantee); expiry *order* is a shard-local detail,
    # so it is compared as a multiset.
    assert [e for e in actual if e[0] != "E"] == [
        e for e in expected if e[0] != "E"
    ]
    assert sorted(e for e in actual if e[0] == "E") == sorted(
        e for e in expected if e[0] == "E"
    )
